//! Work-stealing in-process scheduler for sweep cells.
//!
//! The sweep matrix used to scale across cores two ways: `VP_THREADS`
//! workers popping one shared LIFO stack under a single mutex, and
//! `VP_SHARD=i/n` spawning whole extra *processes* that each re-warm their
//! own in-memory `TraceStore`. This module replaces the first and
//! complements the second: one process runs `jobs` workers over a shared
//! **injector deque** of cell indices, each worker keeps a small **local
//! deque** it refills in grain-sized batches, and an idle worker **steals**
//! the back half of a victim's local deque before it ever spins. All
//! workers share one process-wide `TraceStore` (memory + disk tier), so a
//! workload is captured once and replayed everywhere regardless of which
//! worker first touched it.
//!
//! The deques are short mutex-guarded `VecDeque`s rather than lock-free
//! Chase-Lev arrays: sweep cells are milliseconds-to-seconds heavy, so
//! queue operations are nanoseconds of noise and the interesting property
//! is the *balancing policy* (batched injector refills + steal-half), not
//! lock-freedom. Owners take from the front of their deque, thieves from
//! the back, so a thief grabs the work its victim would reach last.
//!
//! Scheduling never affects results: tasks are indexed, outputs land in
//! their input slot, and callers render from the ordered slots — a
//! `--jobs 8` sweep report is byte-identical to `--jobs 1` (pinned by
//! `tests/jobs_determinism.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker telemetry of one scheduler run.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Of those, tasks acquired by stealing from another worker's deque.
    pub stolen: u64,
    /// Wall time this worker spent inside task bodies, in milliseconds.
    pub busy_ms: f64,
}

/// Telemetry of one `run_stealing` invocation.
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// Worker count actually used (`jobs.min(tasks)`).
    pub jobs: usize,
    /// Total tasks executed.
    pub tasks: usize,
    /// Injector refill batch size.
    pub grain: usize,
    /// Total tasks that moved between workers via stealing.
    pub steals: u64,
    /// Wall time of the whole run, in milliseconds.
    pub wall_ms: f64,
    /// Per-worker breakdown, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl SchedStats {
    /// A worker's busy fraction of the run's wall time, in `[0, 1]`.
    pub fn utilization(&self, worker: usize) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        (self.workers[worker].busy_ms / self.wall_ms).clamp(0.0, 1.0)
    }

    /// Mean utilization across workers — the "how saturated was the
    /// machine" headline number.
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.workers.len()).map(|w| self.utilization(w)).sum();
        sum / self.workers.len() as f64
    }
}

std::thread_local! {
    /// The scheduler worker id of the current thread, while inside a
    /// `run_stealing` task body.
    static WORKER_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The work-stealing worker id of the calling thread, when it is one.
///
/// `Some(w)` only on a scheduler worker thread, inside a task body —
/// which is where per-cell telemetry (the sweep's live-feed `cell.*`
/// events) wants to attribute work to a worker. `None` everywhere else,
/// including the dispatching thread.
pub fn current_worker() -> Option<usize> {
    WORKER_ID.with(std::cell::Cell::get)
}

/// Injector refill batch size: large enough that workers go back to the
/// shared deque rarely, small enough that a batch left on a slow worker's
/// deque is worth stealing.
fn grain_for(tasks: usize, jobs: usize) -> usize {
    (tasks / (jobs * 4)).max(1)
}

struct Queues {
    injector: Mutex<VecDeque<usize>>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    grain: usize,
    /// Tasks not yet *completed* (not merely dequeued) — the termination
    /// condition. A worker only parks on `remaining == 0`, never on empty
    /// queues, because another worker's local deque may still hold work.
    remaining: AtomicUsize,
}

impl Queues {
    /// Fetches the next task for `worker`: own deque front, else a
    /// grain-sized refill from the injector, else the back half of the
    /// first non-empty victim deque. `None` means nothing was runnable
    /// *right now* — not that the run is finished.
    fn next(&self, worker: usize, stolen: &mut bool) -> Option<usize> {
        *stolen = false;
        if let Ok(mut own) = self.locals[worker].lock() {
            if let Some(t) = own.pop_front() {
                return Some(t);
            }
        }
        // Refill: take `grain` tasks from the injector, run the first,
        // queue the rest locally (where they remain stealable).
        if let Ok(mut inj) = self.injector.lock() {
            if let Some(t) = inj.pop_front() {
                let batch: Vec<usize> = (1..self.grain).filter_map(|_| inj.pop_front()).collect();
                drop(inj);
                if let Ok(mut own) = self.locals[worker].lock() {
                    own.extend(batch);
                }
                return Some(t);
            }
        }
        // Steal: scan the other workers round-robin from our right-hand
        // neighbour, taking the back half of the first non-empty deque.
        // Victim and own deque are never locked at once.
        let n = self.locals.len();
        for v in (worker + 1..n).chain(0..worker) {
            let Ok(mut victim) = self.locals[v].lock() else {
                continue;
            };
            let len = victim.len();
            if len == 0 {
                continue;
            }
            let mut grabbed = victim.split_off(len - len.div_ceil(2));
            drop(victim);
            let first = grabbed.pop_front();
            if let Ok(mut own) = self.locals[worker].lock() {
                own.extend(grabbed);
            }
            *stolen = true;
            return first;
        }
        None
    }
}

/// Runs `tasks` task indices on `jobs` workers over a shared injector
/// deque, returning each task's output in its input slot plus the run's
/// [`SchedStats`].
///
/// `exec` must be panic-free (callers wrap task bodies in
/// `catch_unwind`); a slot is `None` only if `exec` itself was never
/// reached, which does not happen under normal termination.
pub(crate) fn run_stealing<T: Send>(
    jobs: usize,
    tasks: usize,
    exec: impl Fn(usize) -> T + Sync,
) -> (Vec<Option<T>>, SchedStats) {
    let jobs = jobs.clamp(1, tasks.max(1));
    let grain = grain_for(tasks, jobs);
    let queues = Queues {
        injector: Mutex::new((0..tasks).collect()),
        locals: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
        grain,
        remaining: AtomicUsize::new(tasks),
    };
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..tasks).map(|_| None).collect());
    let executed: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let stolen_ctr: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let busy_ns: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..jobs {
            let queues = &queues;
            let results = &results;
            let executed = &executed;
            let stolen_ctr = &stolen_ctr;
            let busy_ns = &busy_ns;
            let exec = &exec;
            s.spawn(move || {
                WORKER_ID.with(|id| id.set(Some(w)));
                let mut was_stolen = false;
                loop {
                    match queues.next(w, &mut was_stolen) {
                        Some(t) => {
                            let t0 = Instant::now();
                            let out = exec(t);
                            busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            executed[w].fetch_add(1, Ordering::Relaxed);
                            if was_stolen {
                                stolen_ctr[w].fetch_add(1, Ordering::Relaxed);
                            }
                            if let Ok(mut r) = results.lock() {
                                r[t] = Some(out);
                            }
                            queues.remaining.fetch_sub(1, Ordering::Release);
                        }
                        None => {
                            if queues.remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            // Another worker still holds queued or running
                            // work; cells are heavyweight, so a yield-spin
                            // here is invisible in the profile.
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let workers: Vec<WorkerStats> = (0..jobs)
        .map(|w| WorkerStats {
            executed: executed[w].load(Ordering::Relaxed),
            stolen: stolen_ctr[w].load(Ordering::Relaxed),
            busy_ms: busy_ns[w].load(Ordering::Relaxed) as f64 / 1e6,
        })
        .collect();
    let stats = SchedStats {
        jobs,
        tasks,
        grain,
        steals: workers.iter().map(|w| w.stolen).sum(),
        wall_ms,
        workers,
    };
    let outs = results.into_inner().unwrap_or_else(|e| e.into_inner());
    (outs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_every_task_exactly_once_in_slot_order() {
        for jobs in [1, 2, 7, 64] {
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            let (out, stats) = run_stealing(jobs, 100, |t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
                t * 3
            });
            assert_eq!(stats.jobs, jobs.min(100));
            assert_eq!(stats.tasks, 100);
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t} at jobs={jobs}");
            }
            let vals: Vec<usize> = out.into_iter().map(Option::unwrap).collect();
            assert_eq!(vals, (0..100).map(|t| t * 3).collect::<Vec<_>>());
            assert_eq!(
                stats.workers.iter().map(|w| w.executed).sum::<u64>(),
                100,
                "per-worker executed counts cover the task set"
            );
        }
    }

    #[test]
    fn zero_and_tiny_task_counts_terminate() {
        let (out, stats) = run_stealing::<usize>(8, 0, |t| t);
        assert!(out.is_empty());
        assert_eq!(stats.steals, 0);
        let (out, stats) = run_stealing(8, 1, |t| t + 1);
        assert_eq!(out, vec![Some(1)]);
        assert_eq!(stats.jobs, 1, "workers are capped at the task count");
    }

    #[test]
    fn imbalanced_tasks_provoke_steals() {
        // Worker grain for 64 tasks on 4 workers is 4, so a worker that
        // draws the one slow task strands its queued batch — which the
        // idle workers must steal to finish early. Spin-wait (not sleep)
        // keeps the test clock-speed independent.
        let slow_gate = AtomicUsize::new(0);
        let (_, stats) = run_stealing(4, 64, |t| {
            if t == 0 {
                while slow_gate.load(Ordering::Relaxed) < 63 {
                    std::thread::yield_now();
                }
            } else {
                slow_gate.fetch_add(1, Ordering::Relaxed);
            }
        });
        // All other workers finishing while worker-of-task-0 blocks means
        // its queued grain-mates were either stolen or the injector fed
        // everyone else; either way the run terminates — steals are
        // opportunistic, so only sanity-check the accounting.
        assert_eq!(
            stats.steals,
            stats.workers.iter().map(|w| w.stolen).sum::<u64>()
        );
        assert!(stats.mean_utilization() <= 1.0);
    }

    /// The ISSUE's shared-store stress scenario: N workers of the stealing
    /// scheduler all hit one `TraceStore` with *identical* cells at the
    /// same instant (a barrier inside the task bodies guarantees true
    /// concurrency). Single-flight must elect exactly one live capture —
    /// one `trace_store.captures` bump across every per-cell scope — and
    /// every waiter must replay the leader's capture to identical stats.
    #[test]
    fn identical_cells_share_one_single_flight_capture() {
        use std::sync::Barrier;
        use vacuum_packing::exec::{InstCounts, RunConfig, TraceKey, TraceStore};
        use vacuum_packing::program::Layout;

        const WORKERS: usize = 8;
        let workload = vacuum_packing::workloads::suite(1).remove(0);
        let layout = Layout::natural(&workload.program);
        let cfg = RunConfig::default();
        let key = TraceKey::new(
            "steal-single-flight-stress",
            &workload.program,
            &layout,
            &cfg,
        );
        let store = TraceStore::with_capacity_mb(64);
        let barrier = Barrier::new(WORKERS);

        let (outs, stats) = run_stealing(WORKERS, WORKERS, |_| {
            vp_trace::scoped(|| {
                barrier.wait();
                let mut counts = InstCounts::new();
                let stats = store
                    .capture_or_replay(key.clone(), &workload.program, &layout, &cfg, &mut counts)
                    .expect("workload runs");
                (stats.retired, counts.total, counts.cond_branches)
            })
        });
        assert_eq!(stats.jobs, WORKERS, "barrier requires all workers live");

        let outs: Vec<_> = outs.into_iter().map(Option::unwrap).collect();
        let captures: u64 = outs
            .iter()
            .map(|(_, report)| report.counter("trace_store.captures"))
            .sum();
        assert_eq!(
            captures, 1,
            "exactly one worker may capture live; the rest must wait on its flight"
        );
        let replays: u64 = outs
            .iter()
            .map(|(_, report)| report.counter("trace_store.replays"))
            .sum();
        assert_eq!(
            replays,
            (WORKERS - 1) as u64,
            "every non-leader serves its sink from the shared capture"
        );
        let (first, _) = &outs[0];
        assert!(first.0 > 0, "the workload retired instructions");
        for (vals, _) in &outs {
            assert_eq!(vals, first, "replayed cells see bit-identical streams");
        }
    }

    #[test]
    fn grain_scales_with_matrix_and_workers() {
        assert_eq!(grain_for(84, 4), 5);
        assert_eq!(grain_for(4, 4), 1);
        assert_eq!(grain_for(1000, 1), 250);
        assert_eq!(grain_for(0, 8), 1);
    }
}
