//! # vacuum-packing
//!
//! A from-scratch reproduction of *"Vacuum Packing: Extracting
//! Hardware-Detected Program Phases for Post-Link Optimization"*
//! (Barnes, Merten, Nystrom, Hwu — MICRO-35, 2002), as a Rust workspace.
//!
//! This facade re-exports the whole system:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`isa`] | `vp-isa` | EPIC-style instruction set |
//! | [`program`] | `vp-program` | CFG/call-graph program model, builder DSL, liveness, layout |
//! | [`exec`] | `vp-exec` | architectural executor + retired-instruction stream + capture/replay trace cache |
//! | [`sim`] | `vp-sim` | Table 2 timing model (caches, predictors, pipeline) |
//! | [`hsd`] | `vp-hsd` | Hot Spot Detector + phase filtering |
//! | [`core`] | `vp-core` | **the paper's contribution**: region identification, package construction, linking, rewriting |
//! | [`opt`] | `vp-opt` | weight propagation, relayout, rescheduling |
//! | [`workloads`] | `vp-workloads` | the Table 1 benchmark suite |
//! | [`metrics`] | `vp-metrics` | experiment harness, Figure 9 taxonomy, rendering |
//! | [`trace`] | `vp-trace` | structured tracing: spans, counters, events, JSON manifests |
//!
//! ## Quickstart
//!
//! ```
//! use vacuum_packing::prelude::*;
//!
//! // Profile a workload with the hardware Hot Spot Detector...
//! let program = vacuum_packing::workloads::twolf::build(1);
//! let profiled = profile("300.twolf A", program, &HsdConfig::table2(), None)?;
//!
//! // ...then vacuum-pack it and measure how much execution lands in the
//! // per-phase packages.
//! let outcome = evaluate(&profiled, &PackConfig::default(), &OptConfig::default(), None)?;
//! assert!(outcome.coverage > 0.5);
//! # Ok::<(), vacuum_packing::exec::ExecError>(())
//! ```

pub use vp_core as core;
pub use vp_exec as exec;
pub use vp_hsd as hsd;
pub use vp_isa as isa;
pub use vp_metrics as metrics;
pub use vp_opt as opt;
pub use vp_program as program;
pub use vp_sim as sim;
pub use vp_trace as trace;
pub use vp_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use vp_core::{pack, PackConfig, PackOutput};
    pub use vp_exec::{
        CapturedTrace, DiskTier, Executor, InstCounts, NullSink, RunConfig, Sink, TraceKey,
        TraceStore,
    };
    pub use vp_hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig, Phase};
    pub use vp_isa::{BlockId, CodeRef, Cond, FuncId, Inst, Reg, Src};
    pub use vp_metrics::{categorize, evaluate, profile, BranchCounts, TextTable};
    pub use vp_opt::{optimize_packages, OptConfig};
    pub use vp_program::{Layout, LayoutOrder, Program, ProgramBuilder};
    pub use vp_sim::{MachineConfig, TimingModel};
    pub use vp_trace::{Manifest, MemorySink, SummarySink, TraceSink};
    pub use vp_workloads::{suite, Workload};
}
