//! `175.vpr` — FPGA place-and-route workload.
//!
//! Two major phases: *placement* (annealing, like twolf but with a
//! bounding-box cost loop whose trip count varies) and *routing* (wavefront
//! expansion over a grid with congestion branches). The paper notes vpr
//! benefits noticeably from hot-block inference — the placement inner loop
//! has more static branches than a small BBB comfortably holds, so some go
//! missing.

use crate::util::{add_service, lcg_bits, lcg_step, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const GRID: i64 = 64; // 64x64 routing grid
const NETS: usize = 2048;

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0175);
    let mut pb = ProgramBuilder::new();

    let netx = pb.data(random_words(&mut r, NETS, GRID as u64));
    let nety = pb.data(random_words(&mut r, NETS, GRID as u64));
    let fanout = pb.data(
        random_words(&mut r, NETS, 6)
            .iter()
            .map(|w| w + 2)
            .collect(),
    );
    let occupancy = pb.zeros((GRID * GRID) as usize);

    // place(moves=arg0, thresh=arg1): annealing with a bounding-box loop.
    let place = pb.declare("place");
    pb.define(place, |f| {
        let (moves, thresh) = (Reg::arg(0), Reg::arg(1));
        let k = Reg::int(24);
        let state = Reg::int(25);
        let net = Reg::int(26);
        let a = Reg::int(27);
        let fo = Reg::int(28);
        let j = Reg::int(29);
        let x = Reg::int(30);
        let bb = Reg::int(31);
        let rnd = Reg::int(32);
        f.li(state, 4242);
        f.for_range(k, 0, Src::Reg(moves), |f| {
            lcg_step(f, state);
            lcg_bits(f, state, net, 11);
            // bounding-box cost over the net's fanout (variable trip count
            // — several distinct branches competing for BBB entries)
            f.shl(a, net, 3);
            f.add(a, a, Src::Imm(fanout as i64));
            f.load(fo, a, 0);
            f.li(bb, 0);
            f.for_range(j, 0, Src::Reg(fo), |f| {
                f.add(a, net, j);
                f.and(a, a, (NETS - 1) as i64);
                f.shl(a, a, 3);
                f.add(a, a, Src::Imm(netx as i64));
                f.load(x, a, 0);
                let wide = f.cond(Cond::Geu, x, Src::Imm(GRID / 2));
                f.if_else(
                    wide,
                    |f| f.add(bb, bb, x),
                    |f| {
                        f.sub(Reg::int(33), Reg::ZERO, x);
                        f.add(bb, bb, Reg::int(33));
                    },
                );
            });
            // accept branch under the cooling schedule
            lcg_step(f, state);
            lcg_bits(f, state, rnd, 10);
            let accept = f.cond(Cond::Ltu, rnd, Src::Reg(thresh));
            f.if_(accept, |f| {
                // commit: move the net
                f.and(x, bb, GRID - 1);
                f.shl(a, net, 3);
                f.add(a, a, Src::Imm(netx as i64));
                f.store(x, a, 0);
            });
        });
        f.ret();
    });

    // route(nets=arg0): wavefront expansion with congestion checks.
    let route = pb.declare("route");
    pb.define(route, |f| {
        let nets = Reg::arg(0);
        let n = Reg::int(24);
        let a = Reg::int(25);
        let x = Reg::int(26);
        let y = Reg::int(27);
        let step = Reg::int(28);
        let occ = Reg::int(29);
        let cell = Reg::int(30);
        f.for_range(n, 0, Src::Reg(nets), |f| {
            f.and(cell, n, (NETS - 1) as i64);
            f.shl(a, cell, 3);
            f.add(a, a, Src::Imm(netx as i64));
            f.load(x, a, 0);
            f.shl(a, cell, 3);
            f.add(a, a, Src::Imm(nety as i64));
            f.load(y, a, 0);
            // walk a Manhattan path to the grid centre, bumping occupancy
            f.li(step, 0);
            f.while_(
                |f| {
                    // continue while not at centre and step < 20 (segmented
                    // expansion: the router re-queues long paths, so inner
                    // trip counts stay bounded)
                    let dx = Reg::int(31);
                    let t = Reg::int(32);
                    f.sub(dx, x, GRID / 2);
                    f.alu(vp_isa::AluOp::Seq, t, dx, Src::Imm(0));
                    f.sub(Reg::int(33), y, GRID / 2);
                    f.alu(vp_isa::AluOp::Seq, Reg::int(34), Reg::int(33), Src::Imm(0));
                    f.and(t, t, Reg::int(34));
                    f.alu(vp_isa::AluOp::Slt, Reg::int(34), step, Src::Imm(20));
                    f.alu(vp_isa::AluOp::Seq, t, t, Src::Imm(0));
                    f.and(t, t, Reg::int(34));
                    f.cond(Cond::Ne, t, Src::Imm(0))
                },
                |f| {
                    // step toward the centre, preferring x first
                    let off_x = f.cond(Cond::Ne, x, Src::Imm(GRID / 2));
                    f.if_else(
                        off_x,
                        |f| {
                            let too_big = f.cond(Cond::Geu, x, Src::Imm(GRID / 2));
                            f.if_else(too_big, |f| f.addi(x, x, -1), |f| f.addi(x, x, 1));
                        },
                        |f| {
                            let too_big = f.cond(Cond::Geu, y, Src::Imm(GRID / 2));
                            f.if_else(too_big, |f| f.addi(y, y, -1), |f| f.addi(y, y, 1));
                        },
                    );
                    // congestion update
                    f.mul(Reg::int(31), y, GRID);
                    f.add(Reg::int(31), Reg::int(31), x);
                    f.shl(Reg::int(31), Reg::int(31), 3);
                    f.add(Reg::int(31), Reg::int(31), Src::Imm(occupancy as i64));
                    f.load(occ, Reg::int(31), 0);
                    f.addi(occ, occ, 1);
                    f.store(occ, Reg::int(31), 0);
                    f.addi(step, step, 1);
                },
            );
        });
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "vpr", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 29);
        // Architecture / netlist reading.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Placement: two temperature regimes (accept branch flips), then
        // routing.
        f.call_args(place, &[Src::Imm(30_000 * scale), Src::Imm(1000)]);
        svc.burst(f, salt);
        f.call_args(place, &[Src::Imm(30_000 * scale), Src::Imm(24)]);
        svc.burst(f, salt);
        f.call_args(route, &[Src::Imm(9_000 * scale)]);
        svc.burst(f, salt);
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 1_000_000);
    }

    #[test]
    fn routing_populates_occupancy() {
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let occ_base = p.data[3].base;
        // The centre cell is on every path.
        let centre = (GRID / 2 * GRID + GRID / 2) as u64;
        assert!(ex.memory().read(occ_base + 8 * centre) > 0);
    }
}
