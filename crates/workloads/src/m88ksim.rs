//! `124.m88ksim` — a CPU simulator workload.
//!
//! The paper singles this benchmark out: it "has two phases for loading a
//! binary, each with the same launch point"; without linking one of the two
//! loader packages is unreachable (Section 5.1). We reproduce exactly that
//! structure: `load_binary` is called twice on binaries with *opposite*
//! relocation-flag biases — the same static branch flips bias between the
//! phases, so the software filter records two distinct hot spots rooted at
//! the same function — followed by a long fetch-decode-execute simulation
//! phase.

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

/// Builds the workload; `scale` multiplies all loop counts (1 = full).
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x88_88);
    let mut pb = ProgramBuilder::new();

    let bin_words = 30_000 * scale as usize;
    // Binary 1: ~98.5% of words carry the relocation flag (low bit set) —
    // rare enough on the other side that the direct-copy path stays Cold
    // in this phase's region.
    let bin1: Vec<u64> = random_words(&mut r, bin_words, 1 << 16)
        .iter()
        .map(|w| (w << 1) | ((w % 64 != 0) as u64))
        .collect();
    // Binary 2: only ~1.5% relocatable — the same static branch, flipped.
    let bin2: Vec<u64> = random_words(&mut r, bin_words, 1 << 16)
        .iter()
        .map(|w| (w << 1) | ((w % 64 == 0) as u64))
        .collect();
    // Simulated program: 4096 words of opcode-encoded instructions.
    let sim_prog: Vec<u64> = random_words(&mut r, 4096, 1 << 24);

    let bin1_base = pb.data(bin1);
    let bin2_base = pb.data(bin2);
    let simp_base = pb.data(sim_prog);
    let image_base = pb.zeros(bin_words);
    let data_base = pb.zeros(4096);

    // load_binary(dst=arg0, src=arg1, n=arg2, reloc=arg3)
    let load_binary = pb.declare("load_binary");
    pb.define(load_binary, |f| {
        let (dst, src, n, reloc) = (Reg::arg(0), Reg::arg(1), Reg::arg(2), Reg::arg(3));
        let i = Reg::int(24);
        let w = Reg::int(25);
        let flag = Reg::int(26);
        let a = Reg::int(27);
        f.for_range(i, 0, Src::Reg(n), |f| {
            f.shl(a, i, 3);
            f.add(a, a, src);
            f.load(w, a, 0);
            f.and(flag, w, 1);
            // The phase-defining branch: relocate or copy directly.
            let c = f.cond(Cond::Ne, flag, Src::Imm(0));
            f.if_else(
                c,
                |f| {
                    // Relocate: adjust by the relocation base.
                    f.shr(w, w, 1);
                    f.add(w, w, reloc);
                },
                |f| {
                    f.shr(w, w, 1);
                },
            );
            f.shl(a, i, 3);
            f.add(a, a, dst);
            f.store(w, a, 0);
        });
        f.ret();
    });

    // simulate(prog=arg0, data=arg1, steps=arg2): fetch-decode-execute.
    let simulate = pb.declare("simulate");
    pb.define(simulate, |f| {
        let (prog, data, steps) = (Reg::arg(0), Reg::arg(1), Reg::arg(2));
        let pc = Reg::int(24);
        let acc = Reg::int(25);
        let w = Reg::int(26);
        let op = Reg::int(27);
        let addr = Reg::int(28);
        let t = Reg::int(29);
        let k = Reg::int(30);
        f.li(pc, 0);
        f.li(acc, 0);
        f.for_range(k, 0, Src::Reg(steps), |f| {
            // fetch
            f.and(t, pc, 4095);
            f.shl(addr, t, 3);
            f.add(addr, addr, prog);
            f.load(w, addr, 0);
            f.and(op, w, 7);
            f.addi(pc, pc, 1);
            // decode ladder
            f.switch(
                op,
                vec![
                    (
                        0,
                        Box::new(|f: &mut vp_program::FunctionBuilder| {
                            f.shr(Reg::int(31), Reg::int(26), 3);
                            f.add(Reg::int(25), Reg::int(25), Reg::int(31));
                        }),
                    ),
                    (
                        1,
                        Box::new(|f: &mut vp_program::FunctionBuilder| {
                            f.shr(Reg::int(31), Reg::int(26), 3);
                            f.sub(Reg::int(25), Reg::int(25), Reg::int(31));
                        }),
                    ),
                    (
                        2,
                        Box::new(move |f: &mut vp_program::FunctionBuilder| {
                            // load from data
                            f.shr(Reg::int(31), Reg::int(26), 3);
                            f.and(Reg::int(31), Reg::int(31), 4095);
                            f.shl(Reg::int(31), Reg::int(31), 3);
                            f.add(Reg::int(31), Reg::int(31), data);
                            f.load(Reg::int(32), Reg::int(31), 0);
                            f.add(Reg::int(25), Reg::int(25), Reg::int(32));
                        }),
                    ),
                    (
                        3,
                        Box::new(move |f: &mut vp_program::FunctionBuilder| {
                            // store to data
                            f.shr(Reg::int(31), Reg::int(26), 3);
                            f.and(Reg::int(31), Reg::int(31), 4095);
                            f.shl(Reg::int(31), Reg::int(31), 3);
                            f.add(Reg::int(31), Reg::int(31), data);
                            f.store(Reg::int(25), Reg::int(31), 0);
                        }),
                    ),
                    (
                        4,
                        Box::new(|f: &mut vp_program::FunctionBuilder| {
                            // conditional jump when acc negative
                            let c = f.cond(Cond::Lt, Reg::int(25), Src::Imm(0));
                            f.if_(c, |f| {
                                f.shr(Reg::int(31), Reg::int(26), 3);
                                f.and(Reg::int(31), Reg::int(31), 4095);
                                f.mov(Reg::int(24), Reg::int(31));
                                f.li(Reg::int(25), 1);
                            });
                        }),
                    ),
                ],
                |f| {
                    // nop-like: slight mix
                    f.xor(Reg::int(25), Reg::int(25), 13);
                },
            );
        });
        f.mov(Reg::ARG0, acc);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "m88k", 6, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 5);
        // Startup: command parsing, symbol tables — never hot.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Phase 1: load binary 1 (relocation-heavy).
        f.call_args(
            load_binary,
            &[
                Src::Imm(image_base as i64),
                Src::Imm(bin1_base as i64),
                Src::Imm(bin_words as i64),
                Src::Imm(0x4000),
            ],
        );
        // Inter-load housekeeping.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Phase 2: load binary 2 (mostly direct copy) — same launch point,
        // flipped branch bias.
        f.call_args(
            load_binary,
            &[
                Src::Imm(image_base as i64),
                Src::Imm(bin2_base as i64),
                Src::Imm(bin_words as i64),
                Src::Imm(0x8000),
            ],
        );
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Phase 3: simulate.
        f.call_args(
            simulate,
            &[
                Src::Imm(simp_base as i64),
                Src::Imm(data_base as i64),
                Src::Imm(60_000 * scale),
            ],
        );
        // Teardown / statistics dump.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, InstCounts, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn builds_and_runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let mut counts = InstCounts::new();
        let stats = Executor::new(&p, &layout)
            .run(&mut counts, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 500_000, "retired {}", stats.retired);
        assert!(counts.cond_branches > 100_000);
    }

    #[test]
    fn deterministic_across_builds() {
        let (p1, p2) = (build(1), build(1));
        let l1 = Layout::natural(&p1);
        let l2 = Layout::natural(&p2);
        let s1 = Executor::new(&p1, &l1)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        let s2 = Executor::new(&p2, &l2)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(s1.retired, s2.retired);
    }
}
