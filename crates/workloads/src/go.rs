//! `099.go` — a game-playing workload.
//!
//! Branchy board evaluation over a 19×19 board. The game is played in two
//! stages — a sparse opening and a dense endgame — so the stone-occupancy
//! branches of the shared evaluation code swing between the stages: the
//! paper measures about 3% of 099.go's dynamic branches as Multi-High
//! (shared between phases with a large bias swing).

use crate::util::{add_service, lcg_bits, lcg_step, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const POINTS: i64 = 361; // 19 x 19

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x99);
    let mut pb = ProgramBuilder::new();

    // Opening board: ~8% occupied; endgame board: ~92% occupied — the
    // occupancy branch flips bias between the game stages.
    let sparse: Vec<u64> = (0..POINTS)
        .map(|_| {
            if r.gen_range(0..100) < 8 {
                1 + r.gen_range(0..2u64)
            } else {
                0
            }
        })
        .collect();
    let dense: Vec<u64> = (0..POINTS)
        .map(|_| {
            if r.gen_range(0..100) < 92 {
                1 + r.gen_range(0..2u64)
            } else {
                0
            }
        })
        .collect();
    let sparse_base = pb.data(sparse);
    let dense_base = pb.data(dense);
    let influence = pb.zeros(POINTS as usize);

    // evaluate(board=arg0) -> score: the shared, branchy evaluation.
    let evaluate = pb.declare("evaluate");
    pb.define(evaluate, |f| {
        let board = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let stone = Reg::int(26);
        let score = Reg::int(27);
        let nb = Reg::int(28);
        let t = Reg::int(29);
        f.li(score, 0);
        f.for_range(i, 0, POINTS, |f| {
            f.shl(a, i, 3);
            f.add(a, a, Src::Reg(board));
            f.load(stone, a, 0);
            // The Multi-High branch: occupied vs empty flips bias between
            // opening and endgame boards.
            let occupied = f.cond(Cond::Ne, stone, Src::Imm(0));
            f.if_else(
                occupied,
                |f| {
                    // liberty-ish count of the right neighbour
                    f.addi(t, i, 1);
                    f.rem(t, t, POINTS);
                    f.shl(a, t, 3);
                    f.add(a, a, Src::Reg(board));
                    f.load(nb, a, 0);
                    let same = f.cond(Cond::Eq, nb, Src::Reg(stone));
                    f.if_else(
                        same,
                        |f| f.addi(score, score, 3),
                        |f| f.addi(score, score, 1),
                    );
                },
                |f| {
                    // empty point: influence update
                    f.shl(a, i, 3);
                    f.add(a, a, Src::Imm(influence as i64));
                    f.load(t, a, 0);
                    f.addi(t, t, 1);
                    f.store(t, a, 0);
                },
            );
        });
        f.mov(Reg::ARG0, score);
        f.ret();
    });

    // gen_moves(board=arg0, n=arg1): candidate generation with a pattern
    // test per point.
    let gen_moves = pb.declare("gen_moves");
    pb.define(gen_moves, |f| {
        let (board, n) = (Reg::arg(0), Reg::arg(1));
        let k = Reg::int(24);
        let state = Reg::int(25);
        let pt = Reg::int(26);
        let a = Reg::int(27);
        let s = Reg::int(28);
        let good = Reg::int(29);
        f.li(state, 31337);
        f.li(good, 0);
        f.for_range(k, 0, Src::Reg(n), |f| {
            lcg_step(f, state);
            lcg_bits(f, state, pt, 9);
            f.rem(pt, pt, POINTS);
            f.shl(a, pt, 3);
            f.add(a, a, Src::Reg(board));
            f.load(s, a, 0);
            let empty = f.cond(Cond::Eq, s, Src::Imm(0));
            f.if_(empty, |f| {
                // cheap pattern check on two neighbours
                f.addi(a, pt, 19);
                f.rem(a, a, POINTS);
                f.shl(a, a, 3);
                f.add(a, a, Src::Reg(board));
                f.load(s, a, 0);
                let below_empty = f.cond(Cond::Eq, s, Src::Imm(0));
                f.if_(below_empty, |f| f.addi(good, good, 1));
            });
        });
        f.mov(Reg::ARG0, good);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "go", 6, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        let stage = Reg::int(56);
        let t = Reg::int(57);
        f.li(salt, 37);
        // Joseki book loading.
        for _ in 0..2 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Opening: many evaluations of the sparse board, with sprawling
        // support code (tactical readers, history tables) in between — go
        // is the paper's lowest-coverage benchmark.
        f.for_range(stage, 0, 220 * scale, |f| {
            f.call_args(evaluate, &[Src::Imm(sparse_base as i64)]);
            f.call_args(gen_moves, &[Src::Imm(sparse_base as i64), Src::Imm(120)]);
            f.and(t, stage, 1);
            let c = f.cond(Cond::Eq, t, Src::Imm(0));
            f.if_(c, |f| svc.call(f, 0, stage));
        });
        // Endgame: the dense board — same code, flipped biases.
        f.for_range(stage, 0, 220 * scale, |f| {
            f.call_args(evaluate, &[Src::Imm(dense_base as i64)]);
            f.call_args(gen_moves, &[Src::Imm(dense_base as i64), Src::Imm(120)]);
            f.and(t, stage, 1);
            let c = f.cond(Cond::Eq, t, Src::Imm(0));
            f.if_(c, |f| svc.call(f, 1, stage));
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 500_000);
    }

    #[test]
    fn dense_board_scores_higher() {
        // Run evaluate once on each board by building a tiny probe program
        // reusing the same generator data (scale 1 suffices — final ARG0
        // holds the last gen_moves result; instead check influence grew).
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let infl = p.data[2].base;
        let touched = (0..POINTS as u64)
            .filter(|i| ex.memory().read(infl + 8 * i) > 0)
            .count();
        assert!(touched > 50, "influence map barely touched: {touched}");
    }
}
