//! Shared helpers for workload construction.

use crate::rng::SplitMix64;
use vp_isa::Reg;
use vp_program::FunctionBuilder;

/// Multiplier of the in-program linear congruential generator
/// (Knuth's MMIX constants).
pub const LCG_A: i64 = 6364136223846793005;
/// Increment of the in-program LCG.
pub const LCG_C: i64 = 1442695040888963407;

/// Emits `state = state * A + C`: a deterministic pseudo-random step
/// computed *by the program itself*, giving data-dependent branches the
/// profiler cannot trivially learn.
pub fn lcg_step(f: &mut FunctionBuilder, state: Reg) {
    f.mul(state, state, LCG_A);
    f.add(state, state, LCG_C);
}

/// Emits `dst = (state >> 33) & (2^bits - 1)`: extracts high-quality bits
/// from the LCG state.
pub fn lcg_bits(f: &mut FunctionBuilder, state: Reg, dst: Reg, bits: u32) {
    f.shr(dst, state, 33);
    f.and(dst, dst, (1i64 << bits) - 1);
}

/// Deterministic RNG for host-side data generation, seeded per workload.
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(seed)
}

/// `n` random words in `0..range`.
pub fn random_words(rng: &mut SplitMix64, n: usize, range: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen_range(0..range)).collect()
}

/// `n` words forming a random permutation cycle of `0..n` — chasing it
/// visits every element in pseudo-random order (the classic
/// pointer-chasing pattern of 181.mcf).
pub fn permutation_cycle(rng: &mut SplitMix64, n: usize) -> Vec<u64> {
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0u64; n];
    for w in order.windows(2) {
        next[w[0]] = w[1] as u64;
    }
    if n > 1 {
        next[order[n - 1]] = order[0] as u64;
    }
    next
}

/// Generated "service" code: the long tail of a real binary (startup,
/// I/O, allocation, library glue) that executes, but never concentrates
/// enough to become a hot spot.
///
/// Each service function is a long *loop-free* run of data-dependent
/// branches, so every static branch executes exactly once per call. Called
/// sparsely (the Branch Behavior Buffer is cleared after each hot-spot
/// detection), these branches never reach the candidate threshold — they
/// are the execution the packages legitimately do not capture, and the
/// static bulk that keeps Table 3's percentages honest.
#[derive(Debug, Clone)]
pub struct ServiceCode {
    funcs: Vec<vp_isa::FuncId>,
}

/// Adds `nfuncs` service functions of `sections` branch sections each.
pub fn add_service(
    pb: &mut vp_program::ProgramBuilder,
    rng: &mut SplitMix64,
    tag: &str,
    nfuncs: usize,
    sections: usize,
) -> ServiceCode {
    use vp_isa::{Cond, Src};
    let mut funcs = Vec::with_capacity(nfuncs);
    for fi in 0..nfuncs {
        let data = pb.data(random_words(rng, sections, u64::MAX));
        let f = pb.func(&format!("svc_{tag}_{fi}"), |f| {
            let a = vp_isa::Reg::int(24);
            let w = vp_isa::Reg::int(25);
            let acc = vp_isa::Reg::int(26);
            // arg0 perturbs which direction each branch takes per call.
            let salt = vp_isa::Reg::arg(0);
            f.li(acc, 0);
            for j in 0..sections {
                f.li(a, data as i64 + 8 * j as i64);
                f.load(w, a, 0);
                f.xor(w, w, salt);
                f.and(w, w, 1 << (j % 13));
                let c = f.cond(Cond::Ne, w, Src::Imm(0));
                f.if_(c, |f| {
                    f.addi(acc, acc, 1);
                });
            }
            f.mov(vp_isa::Reg::ARG0, acc);
            f.ret();
        });
        funcs.push(f);
    }
    ServiceCode { funcs }
}

impl ServiceCode {
    /// Emits a call to service function `idx % n` with `salt` in `arg0`.
    /// The caller must treat `r4..r11` and `r24..r26` as clobbered.
    pub fn call(&self, f: &mut FunctionBuilder, idx: usize, salt: Reg) {
        if salt != Reg::arg(0) {
            f.mov(Reg::arg(0), salt);
        }
        f.call(self.funcs[idx % self.funcs.len()]);
    }

    /// Emits calls to all service functions in turn, three rounds (an
    /// "initialization" or "I/O" burst). Three rounds keep per-branch
    /// executed counts far below the candidate threshold while giving the
    /// burst enough dynamic weight to matter.
    pub fn burst(&self, f: &mut FunctionBuilder, salt: Reg) {
        for round in 0..3 {
            for i in 0..self.funcs.len() {
                self.call(f, round * self.funcs.len() + i, salt);
            }
        }
    }

    /// Number of service functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether no service functions were generated.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_isa::{Cond, Src};
    use vp_program::{Layout, ProgramBuilder};

    #[test]
    fn service_code_runs_and_is_branchy() {
        let mut r = rng(9);
        let mut pb = ProgramBuilder::new();
        let svc = add_service(&mut pb, &mut r, "t", 2, 50);
        let main = pb.declare("main");
        pb.define(main, |f| {
            let salt = Reg::int(56);
            f.li(salt, 3);
            svc.burst(f, salt);
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut counts = vp_exec::InstCounts::new();
        Executor::new(&p, &layout)
            .run(&mut counts, &RunConfig::default())
            .unwrap();
        // 2 functions x 50 sections x 3 rounds: 300 conditional branches.
        assert_eq!(counts.cond_branches, 300);
        assert_eq!(svc.len(), 2);
        assert!(!svc.is_empty());
    }

    #[test]
    fn in_program_lcg_is_roughly_balanced() {
        // Count how often bit extraction yields < 8 out of 16: ~50%.
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let state = Reg::int(20);
            let bits = Reg::int(21);
            let low = Reg::int(22);
            let i = Reg::int(23);
            f.li(state, 12345);
            f.li(low, 0);
            f.for_range(i, 0, 1000, |f| {
                lcg_step(f, state);
                lcg_bits(f, state, bits, 4);
                let c = f.cond(Cond::Lt, bits, Src::Imm(8));
                f.if_(c, |f| f.addi(low, low, 1));
            });
            f.halt();
        });
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let low = ex.reg(Reg::int(22));
        assert!(
            (400..600).contains(&low),
            "low-half count {low} should be ~500"
        );
    }

    #[test]
    fn permutation_cycle_visits_everything() {
        let mut r = rng(7);
        let next = permutation_cycle(&mut r, 64);
        let mut seen = [false; 64];
        let mut at = 0usize;
        for _ in 0..64 {
            assert!(!seen[at], "cycle revisited {at} early");
            seen[at] = true;
            at = next[at] as usize;
        }
        assert_eq!(at, 0, "must return to start after n steps");
    }

    #[test]
    fn random_words_respect_range() {
        let mut r = rng(1);
        assert!(random_words(&mut r, 100, 10).iter().all(|&w| w < 10));
    }
}
