//! `134.perl` — an interpreter workload.
//!
//! The paper's Section 3.3.4 motivates package linking with "a perl
//! interpreter where the command execution loop may serve as the root
//! function for different packages specialized for different types of
//! commands, such as string or numeric processing". The script here is
//! *phased*: a long numeric stretch, then a long string stretch, then a
//! matching stretch — three hot spots all rooted at `run_script`.
//!
//! Inputs: A — all three phases, long; B — string-dominated, short;
//! C — numeric-dominated, very short (mirroring Table 1's 1512M/28M/8M).

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

/// Input selector matching Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// Train 1: numeric, then string, then match phases.
    A,
    /// Train 2: string-heavy.
    B,
    /// Train 3: numeric-heavy, shortest.
    C,
}

/// Builds the workload.
pub fn build(input: Input, scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x13_34);
    let mut pb = ProgramBuilder::new();

    let buf_words = 2048usize;
    let text = pb.data(random_words(&mut r, buf_words, 1 << 8));
    let scratch = pb.zeros(buf_words);
    let needle = pb.data(random_words(&mut r, 8, 1 << 8));

    // do_numeric(reps=arg0)
    let do_numeric = pb.declare("do_numeric");
    pb.define(do_numeric, |f| {
        let reps = Reg::arg(0);
        let i = Reg::int(24);
        let x = Reg::int(25);
        let y = Reg::int(26);
        f.li(x, 3);
        f.for_range(i, 0, Src::Reg(reps), |f| {
            f.mul(x, x, 1103515245);
            f.add(x, x, 12345);
            f.shr(y, x, 16);
            f.and(y, y, 1023);
            let odd = f.cond(Cond::Ne, y, Src::Imm(0));
            f.if_(odd, |f| {
                f.rem(Reg::int(27), x, Src::Reg(y));
                f.add(x, x, Reg::int(27));
            });
        });
        f.mov(Reg::ARG0, x);
        f.ret();
    });

    // do_string(len=arg0): copy + transform a buffer region.
    let do_string = pb.declare("do_string");
    pb.define(do_string, |f| {
        let len = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let w = Reg::int(26);
        f.for_range(i, 0, Src::Reg(len), |f| {
            f.and(a, i, (2048 - 1) as i64);
            f.shl(a, a, 3);
            f.add(a, a, Src::Imm(text as i64));
            f.load(w, a, 0);
            // "upcase": branch on character class
            let lower = f.cond(Cond::Geu, w, Src::Imm(97));
            f.if_(lower, |f| f.addi(w, w, -32));
            f.and(a, i, (2048 - 1) as i64);
            f.shl(a, a, 3);
            f.add(a, a, Src::Imm(scratch as i64));
            f.store(w, a, 0);
        });
        f.ret();
    });

    // do_match(len=arg0): scan for an 8-word needle.
    let do_match = pb.declare("do_match");
    pb.define(do_match, |f| {
        let len = Reg::arg(0);
        let i = Reg::int(24);
        let j = Reg::int(25);
        let a = Reg::int(26);
        let w = Reg::int(27);
        let nw = Reg::int(28);
        let hits = Reg::int(29);
        f.li(hits, 0);
        f.for_range(i, 0, Src::Reg(len), |f| {
            // compare up to 8 positions; mismatch breaks via flag
            let matched = Reg::int(30);
            f.li(matched, 1);
            f.for_range(j, 0, 8, |f| {
                f.add(a, i, j);
                f.and(a, a, (2048 - 1) as i64);
                f.shl(a, a, 3);
                f.add(a, a, Src::Imm(text as i64));
                f.load(w, a, 0);
                f.shl(a, j, 3);
                f.add(a, a, Src::Imm(needle as i64));
                f.load(nw, a, 0);
                let ne = f.cond(Cond::Ne, w, Src::Reg(nw));
                f.if_(ne, |f| f.li(matched, 0));
            });
            let hit = f.cond(Cond::Ne, matched, Src::Imm(0));
            f.if_(hit, |f| f.addi(hits, hits, 1));
        });
        f.mov(Reg::ARG0, hits);
        f.ret();
    });

    // run_script(script kind schedule is compiled in): the command loop —
    // the shared root function.
    let run_script = pb.declare("run_script");
    // arg0 = command count, arg1 = phase selector (0 num, 1 str, 2 match)
    pb.define(run_script, |f| {
        let (count, kind) = (Reg::arg(0), Reg::arg(1));
        let k = Reg::int(40);
        let saved_kind = Reg::int(41);
        let saved_count = Reg::int(42);
        f.mov(saved_kind, kind);
        // `count` arrives in r4 = ARG0, which every call below clobbers:
        // copy it out first.
        f.mov(saved_count, count);
        f.for_range(k, 0, Src::Reg(saved_count), |f| {
            let is_num = f.cond(Cond::Eq, saved_kind, Src::Imm(0));
            f.if_else(
                is_num,
                |f| f.call_args(do_numeric, &[Src::Imm(80)]),
                |f| {
                    let is_str = f.cond(Cond::Eq, saved_kind, Src::Imm(1));
                    f.if_else(
                        is_str,
                        |f| f.call_args(do_string, &[Src::Imm(80)]),
                        |f| f.call_args(do_match, &[Src::Imm(20)]),
                    );
                },
            );
        });
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "perl", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 17);
        // Script compilation.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        let phases: Vec<(i64, i64)> = match input {
            Input::A => vec![(0, 900 * scale), (1, 900 * scale), (2, 550 * scale)],
            Input::B => vec![(1, 700 * scale), (2, 250 * scale)],
            Input::C => vec![(0, 650 * scale)],
        };
        for (kind, count) in phases {
            f.call_args(run_script, &[Src::Imm(count), Src::Imm(kind)]);
            // Between script sections: I/O flush, garbage collection.
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn all_inputs_run_to_completion() {
        for input in [Input::A, Input::B, Input::C] {
            let p = build(input, 1);
            p.validate().unwrap();
            let layout = Layout::natural(&p);
            let stats = Executor::new(&p, &layout)
                .run(&mut NullSink, &RunConfig::default())
                .unwrap();
            assert_eq!(stats.stop, vp_exec::StopReason::Halted, "{input:?}");
        }
    }

    #[test]
    fn input_sizes_are_ordered_like_table1() {
        let sizes: Vec<u64> = [Input::A, Input::B, Input::C]
            .iter()
            .map(|&i| {
                let p = build(i, 1);
                let layout = Layout::natural(&p);
                Executor::new(&p, &layout)
                    .run(&mut NullSink, &RunConfig::default())
                    .unwrap()
                    .retired
            })
            .collect();
        assert!(sizes[0] > sizes[1], "A > B");
        assert!(sizes[1] > sizes[2], "B > C");
    }
}
