//! `300.twolf` — a simulated-annealing placement workload.
//!
//! The defining behavior: the *accept* branch of the annealing loop is
//! heavily taken at high temperature and heavily not-taken at low
//! temperature — the same static branch flips bias across the cooling
//! schedule, creating distinct hot spots rooted in the same loop (the
//! paper's Multi-High category, and a large linking win in Figures 8/10).

use crate::util::{add_service, lcg_bits, lcg_step, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const CELLS: usize = 4096;

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0300);
    let mut pb = ProgramBuilder::new();

    let xpos = pb.data(random_words(&mut r, CELLS, 1024));
    let ypos = pb.data(random_words(&mut r, CELLS, 1024));

    // anneal_pass(moves=arg0, accept_threshold=arg1) -> accepted
    let anneal_pass = pb.declare("anneal_pass");
    pb.define(anneal_pass, |f| {
        let (moves, thresh) = (Reg::arg(0), Reg::arg(1));
        let k = Reg::int(24);
        let state = Reg::int(25);
        let cell = Reg::int(26);
        let a = Reg::int(27);
        let x = Reg::int(28);
        let y = Reg::int(29);
        let dcost = Reg::int(30);
        let rnd = Reg::int(31);
        let accepted = Reg::int(32);
        f.li(state, 777);
        f.li(accepted, 0);
        f.for_range(k, 0, Src::Reg(moves), |f| {
            lcg_step(f, state);
            lcg_bits(f, state, cell, 12);
            // cost delta = f(x, y) with a pseudo-random perturbation
            f.shl(a, cell, 3);
            f.add(a, a, Src::Imm(xpos as i64));
            f.load(x, a, 0);
            f.shl(a, cell, 3);
            f.add(a, a, Src::Imm(ypos as i64));
            f.load(y, a, 0);
            f.sub(dcost, x, y);
            // the temperature-scheduled accept branch:
            lcg_step(f, state);
            lcg_bits(f, state, rnd, 10);
            let accept = f.cond(Cond::Ltu, rnd, Src::Reg(thresh));
            f.if_else(
                accept,
                |f| {
                    // apply the move: swap-ish position update
                    f.addi(accepted, accepted, 1);
                    f.add(x, x, dcost);
                    f.and(x, x, 1023);
                    f.shl(a, cell, 3);
                    f.add(a, a, Src::Imm(xpos as i64));
                    f.store(x, a, 0);
                },
                |f| {
                    // reject: cheap bookkeeping
                    f.xor(dcost, dcost, 1);
                },
            );
        });
        f.mov(Reg::ARG0, accepted);
        f.ret();
    });

    // wire_cost(samples=arg0): half-perimeter estimate loop (hot between
    // temperature regimes; shared across phases).
    let wire_cost = pb.declare("wire_cost");
    pb.define(wire_cost, |f| {
        let samples = Reg::arg(0);
        let k = Reg::int(24);
        let a = Reg::int(25);
        let x1 = Reg::int(26);
        let x2 = Reg::int(27);
        let sum = Reg::int(28);
        let t = Reg::int(29);
        f.li(sum, 0);
        f.for_range(k, 0, Src::Reg(samples), |f| {
            f.and(t, k, (CELLS - 1) as i64);
            f.shl(a, t, 3);
            f.add(a, a, Src::Imm(xpos as i64));
            f.load(x1, a, 0);
            f.addi(t, t, 1);
            f.and(t, t, (CELLS - 1) as i64);
            f.shl(a, t, 3);
            f.add(a, a, Src::Imm(xpos as i64));
            f.load(x2, a, 0);
            f.sub(t, x1, x2);
            let neg = f.cond(Cond::Lt, t, Src::Imm(0));
            f.if_(neg, |f| f.sub(t, Reg::ZERO, t));
            f.add(sum, sum, t);
        });
        f.mov(Reg::ARG0, sum);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "twolf", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 23);
        // Netlist parsing.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Cooling schedule: hot regime (accept ~98%), mid (~45%), frozen
        // (~2%) — three regimes of the same annealing loop; the reject
        // path is genuinely Cold in the hot regime and flips in the frozen
        // one. Accept counts land in r56/r57/r58 for inspection.
        for (i, thresh) in [1000i64, 460, 24].into_iter().enumerate() {
            f.call_args(anneal_pass, &[Src::Imm(65_000 * scale), Src::Imm(thresh)]);
            f.mov(Reg::int(56 + i as u8), Reg::ARG0);
            f.call_args(wire_cost, &[Src::Imm(12_000 * scale)]);
            // Checkpoint write-out between regimes.
            svc.burst(f, salt);
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, InstCounts, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let mut counts = InstCounts::new();
        let stats = Executor::new(&p, &layout)
            .run(&mut counts, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(counts.cond_branches > 300_000);
    }

    #[test]
    fn accept_rate_follows_schedule() {
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let (hot, mid, frozen) = (
            ex.reg(Reg::int(56)),
            ex.reg(Reg::int(57)),
            ex.reg(Reg::int(58)),
        );
        assert!(
            hot > mid && mid > frozen,
            "accept counts must cool: {hot} {mid} {frozen}"
        );
        assert!(
            hot > frozen * 5,
            "bias must flip strongly: {hot} vs {frozen}"
        );
    }
}
