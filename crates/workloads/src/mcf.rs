//! `181.mcf` — a network-simplex-style, pointer-chasing workload.
//!
//! Dominated by cache-hostile traversals: a pricing phase chases a
//! pseudo-random permutation cycle over a large arc array testing reduced
//! costs, and an augmentation phase walks tree paths updating flows. The
//! two loops form distinct hot spots; the paper reports large coverage
//! gains from linking on this benchmark.

use crate::util::{add_service, permutation_cycle, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const ARCS: usize = 32 * 1024;

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0181);
    let mut pb = ProgramBuilder::new();

    let next = pb.data(permutation_cycle(&mut r, ARCS));
    let cost = pb.data(random_words(&mut r, ARCS, 1 << 20));
    let flow = pb.zeros(ARCS);
    let depth = pb.data(random_words(&mut r, ARCS, 64));

    // price(rounds=arg0) -> negative-cost count
    let price = pb.declare("price");
    pb.define(price, |f| {
        let rounds = Reg::arg(0);
        let k = Reg::int(24);
        let at = Reg::int(25);
        let a = Reg::int(26);
        let c = Reg::int(27);
        let neg = Reg::int(28);
        let t = Reg::int(29);
        f.li(at, 0);
        f.li(neg, 0);
        f.for_range(k, 0, Src::Reg(rounds), |f| {
            // chase: at = next[at]  (cache-hostile)
            f.shl(a, at, 3);
            f.add(a, a, Src::Imm(next as i64));
            f.load(at, a, 0);
            // reduced cost test
            f.shl(a, at, 3);
            f.add(a, a, Src::Imm(cost as i64));
            f.load(c, a, 0);
            f.and(t, c, 7);
            let is_neg = f.cond(Cond::Ltu, t, Src::Imm(2));
            f.if_(is_neg, |f| {
                f.addi(neg, neg, 1);
                // touch flow
                f.shl(a, at, 3);
                f.add(a, a, Src::Imm(flow as i64));
                f.load(t, a, 0);
                f.addi(t, t, 1);
                f.store(t, a, 0);
            });
        });
        f.mov(Reg::ARG0, neg);
        f.ret();
    });

    // augment(rounds=arg0): walk up "tree depths" updating flow.
    let augment = pb.declare("augment");
    pb.define(augment, |f| {
        let rounds = Reg::arg(0);
        let k = Reg::int(24);
        let node = Reg::int(25);
        let d = Reg::int(26);
        let a = Reg::int(27);
        let t = Reg::int(28);
        let state = Reg::int(29);
        f.li(state, 99991);
        f.for_range(k, 0, Src::Reg(rounds), |f| {
            crate::util::lcg_step(f, state);
            crate::util::lcg_bits(f, state, node, 15);
            // read this node's depth, walk that many steps
            f.shl(a, node, 3);
            f.add(a, a, Src::Imm(depth as i64));
            f.load(d, a, 0);
            f.and(d, d, 15);
            let j = Reg::int(30);
            f.for_range(j, 0, Src::Reg(d), |f| {
                f.add(t, node, j);
                f.and(t, t, (ARCS - 1) as i64);
                f.shl(a, t, 3);
                f.add(a, a, Src::Imm(flow as i64));
                f.load(t, a, 0);
                f.addi(t, t, 1);
                f.store(t, a, 0);
            });
        });
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "mcf", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 31);
        // Network construction.
        for _ in 0..4 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.call_args(price, &[Src::Imm(200_000 * scale)]);
        svc.burst(f, salt);
        f.call_args(augment, &[Src::Imm(16_000 * scale)]);
        svc.burst(f, salt);
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 1_000_000);
    }

    #[test]
    fn pointer_chase_visits_many_arcs() {
        // After 220k chase steps over a 32k cycle the whole flow array has
        // been touched repeatedly: some flow entries must be nonzero.
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let flow_base = p.data[2].base;
        let touched = (0..1000)
            .filter(|i| ex.memory().read(flow_base + 8 * i) > 0)
            .count();
        assert!(
            touched > 100,
            "only {touched} of the first 1000 flow words touched"
        );
    }
}
