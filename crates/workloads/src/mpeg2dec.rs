//! `mpeg2dec` — a MediaBench video-decoder workload.
//!
//! Decodes a synthetic bitstream of I- and P-frames: I-frames run the
//! intra path (inverse-transform loops, floating point), P-frames run
//! motion compensation (reference copy plus sparse residuals, with the
//! coded-block-pattern branch). The clip is a static scene followed by a
//! motion scene, so the two decode paths form coarse phases like a real
//! train clip.

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, FaluOp, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const MB_PER_FRAME: i64 = 330; // macroblocks per frame
const MB_WORDS: usize = 64;

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x23_44);
    let mut pb = ProgramBuilder::new();

    let n_words = MB_PER_FRAME as usize * MB_WORDS;
    let bitstream = pb.data(random_words(&mut r, n_words, 1 << 16));
    let reference = pb.data(random_words(&mut r, n_words, 256));
    let frame = pb.zeros(n_words);
    // Coded-block-pattern words: static scene = sparse, motion = dense.
    let cbp_static = pb.data(
        (0..MB_PER_FRAME as usize)
            .map(|i| ((i % 10) == 0) as u64)
            .collect(),
    );
    let cbp_motion = pb.data(
        (0..MB_PER_FRAME as usize)
            .map(|i| ((i % 10) != 0) as u64)
            .collect(),
    );

    // decode_intra(mb=arg0): inverse-transform one macroblock.
    let decode_intra = pb.declare("decode_intra");
    pb.define(decode_intra, |f| {
        let mb = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let w = Reg::int(26);
        let fx = Reg::fp(8);
        let facc = Reg::fp(9);
        let fc = Reg::fp(10);
        f.fli(facc, 0.0);
        f.fli(fc, std::f64::consts::FRAC_1_SQRT_2);
        f.mul(a, mb, (MB_WORDS * 8) as i64);
        f.add(a, a, Src::Imm(bitstream as i64));
        let base = Reg::int(27);
        f.mov(base, a);
        f.for_range(i, 0, MB_WORDS as i64, |f| {
            f.shl(a, i, 3);
            f.add(a, a, Src::Reg(base));
            f.load(w, a, 0);
            f.itof(fx, w);
            f.falu(FaluOp::Mul, fx, fx, fc);
            f.falu(FaluOp::Add, facc, facc, fx);
            f.ftoi(w, fx);
            // write the sample
            f.mul(a, Reg::arg(0), (MB_WORDS * 8) as i64);
            f.add(a, a, Src::Imm(frame as i64));
            f.shl(Reg::int(28), i, 3);
            f.add(a, a, Reg::int(28));
            f.store(w, a, 0);
        });
        f.ret();
    });

    // decode_inter(mb=arg0, cbp_base=arg1): motion compensation.
    let decode_inter = pb.declare("decode_inter");
    pb.define(decode_inter, |f| {
        let (mb, cbp_base) = (Reg::arg(0), Reg::arg(1));
        let i = Reg::int(24);
        let a = Reg::int(25);
        let w = Reg::int(26);
        let cbp = Reg::int(27);
        let t = Reg::int(28);
        // coded-block-pattern branch
        f.shl(a, mb, 3);
        f.add(a, a, Src::Reg(cbp_base));
        f.load(cbp, a, 0);
        let coded = f.cond(Cond::Ne, cbp, Src::Imm(0));
        f.if_else(
            coded,
            |f| {
                // copy reference + residual
                f.for_range(i, 0, MB_WORDS as i64, |f| {
                    f.mul(a, mb, (MB_WORDS * 8) as i64);
                    f.shl(t, i, 3);
                    f.add(a, a, t);
                    f.add(Reg::int(29), a, Src::Imm(reference as i64));
                    f.load(w, Reg::int(29), 0);
                    f.add(Reg::int(29), a, Src::Imm(bitstream as i64));
                    f.load(t, Reg::int(29), 0);
                    f.and(t, t, 15);
                    f.add(w, w, t);
                    f.add(Reg::int(29), a, Src::Imm(frame as i64));
                    f.store(w, Reg::int(29), 0);
                });
            },
            |f| {
                // skipped block: plain copy
                f.for_range(i, 0, MB_WORDS as i64, |f| {
                    f.mul(a, mb, (MB_WORDS * 8) as i64);
                    f.shl(t, i, 3);
                    f.add(a, a, t);
                    f.add(Reg::int(29), a, Src::Imm(reference as i64));
                    f.load(w, Reg::int(29), 0);
                    f.add(Reg::int(29), a, Src::Imm(frame as i64));
                    f.store(w, Reg::int(29), 0);
                });
            },
        );
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "mpeg", 4, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 53);
        // Sequence-header parsing.
        for _ in 0..2 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        let frame_i = Reg::int(56);
        let mb = Reg::int(57);
        // Scene 1 (static): I frame then 9 P frames with sparse CBP —
        // repeated.
        f.for_range(frame_i, 0, 2 * scale, |f| {
            f.for_range(mb, 0, MB_PER_FRAME, |f| {
                f.mov(Reg::arg(0), mb);
                f.call(decode_intra);
            });
            let gop = Reg::int(58);
            f.for_range(gop, 0, 9, |f| {
                f.for_range(mb, 0, MB_PER_FRAME, |f| {
                    f.mov(Reg::arg(0), mb);
                    f.li(Reg::arg(1), cbp_static as i64);
                    f.call(decode_inter);
                });
            });
        });
        svc.burst(f, salt);
        // Scene 2 (motion): P frames with dense CBP.
        f.for_range(frame_i, 0, 12 * scale, |f| {
            f.for_range(mb, 0, MB_PER_FRAME, |f| {
                f.mov(Reg::arg(0), mb);
                f.li(Reg::arg(1), cbp_motion as i64);
                f.call(decode_inter);
            });
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 1_000_000);
    }

    #[test]
    fn frame_buffer_is_written() {
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let frame_base = p.data[2].base;
        let nonzero = (0..512)
            .filter(|i| ex.memory().read(frame_base + 8 * i) != 0)
            .count();
        assert!(nonzero > 256, "frame mostly empty: {nonzero}");
    }
}
