//! `130.li` — a lisp-interpreter workload.
//!
//! Reproduces the paper's 130.li anecdote (Section 5.1): "a few weakly
//! executed callers call an important callee. Only one caller is hot
//! enough to be detected and the callee gets inlined into it. This prevents
//! the callee from being a root function and thus 10% of the execution is
//! missed." Here `eval_expr` is the important callee: `cmd_math` (hot) and
//! the weak `cmd_gc`/`cmd_io` all call it.
//!
//! Inputs: A — mixed command script (SPEC train), B — six-queens
//! (self-recursive solver), C — reduced reference (longer mixed script).

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

/// Input selector matching Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// SPEC train: mixed commands.
    A,
    /// 6 queens: recursion dominated.
    B,
    /// Reduced ref: longer mixed run.
    C,
}

/// Builds the workload.
pub fn build(input: Input, scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x11_30);
    let mut pb = ProgramBuilder::new();

    let heap_cells = 4096usize;
    // Heap cells: low 2 bits tag (0 = number, 1 = pair, 2 = symbol),
    // upper bits payload / next index.
    let heap: Vec<u64> = random_words(&mut r, heap_cells, 1 << 20)
        .iter()
        .map(|w| (w << 2) | (w % 5).min(2))
        .collect();
    let heap_base = pb.data(heap);
    let iobuf_base = pb.zeros(1024);

    // eval_expr(base=arg0, n=arg1) -> arg0: the important callee.
    let eval_expr = pb.declare("eval_expr");
    pb.define(eval_expr, |f| {
        let (base, n) = (Reg::arg(0), Reg::arg(1));
        let i = Reg::int(24);
        let cell = Reg::int(25);
        let tag = Reg::int(26);
        let acc = Reg::int(27);
        let a = Reg::int(28);
        f.li(acc, 0);
        f.for_range(i, 0, Src::Reg(n), |f| {
            f.and(a, i, (4096 - 1) as i64);
            f.shl(a, a, 3);
            f.add(a, a, base);
            f.load(cell, a, 0);
            f.and(tag, cell, 3);
            let c0 = f.cond(Cond::Eq, tag, Src::Imm(0));
            f.if_else(
                c0,
                |f| {
                    // number: arithmetic
                    f.shr(Reg::int(29), cell, 2);
                    f.add(acc, acc, Reg::int(29));
                },
                |f| {
                    let c1 = f.cond(Cond::Eq, tag, Src::Imm(1));
                    f.if_else(
                        c1,
                        |f| {
                            // pair: follow the cdr once
                            f.shr(Reg::int(29), cell, 2);
                            f.and(Reg::int(29), Reg::int(29), (4096 - 1) as i64);
                            f.shl(Reg::int(29), Reg::int(29), 3);
                            f.add(Reg::int(29), Reg::int(29), base);
                            f.load(Reg::int(30), Reg::int(29), 0);
                            f.shr(Reg::int(30), Reg::int(30), 2);
                            f.xor(acc, acc, Reg::int(30));
                        },
                        |f| {
                            // symbol: hash-ish mix
                            f.shr(Reg::int(29), cell, 2);
                            f.mul(Reg::int(29), Reg::int(29), 31);
                            f.add(acc, acc, Reg::int(29));
                        },
                    );
                },
            );
        });
        f.mov(Reg::ARG0, acc);
        f.ret();
    });

    // cmd_math: the hot caller — evaluates many expressions.
    let cmd_math = pb.declare("cmd_math");
    pb.define(cmd_math, |f| {
        let reps = Reg::int(40);
        let sum = Reg::int(41);
        f.li(sum, 0);
        f.for_range(reps, 0, 8, |f| {
            f.call_args(eval_expr, &[Src::Imm(heap_base as i64), Src::Imm(200)]);
            f.add(sum, sum, Reg::ARG0);
        });
        f.mov(Reg::ARG0, sum);
        f.ret();
    });

    // cmd_gc: weak caller — a short mark burst plus one big evaluation.
    // The burst stays below the BBB candidate threshold, so cmd_gc itself
    // is never detected and its call to eval_expr keeps running original
    // code after packing — the paper's 130.li coverage-loss anecdote.
    let cmd_gc = pb.declare("cmd_gc");
    pb.define(cmd_gc, |f| {
        let i = Reg::int(40);
        let a = Reg::int(41);
        let w = Reg::int(42);
        f.for_range(i, 0, 12, |f| {
            f.shl(a, i, 3);
            f.add(a, a, Src::Imm(heap_base as i64));
            f.load(w, a, 0);
            f.or(w, w, 4); // mark bit
            f.store(w, a, 0);
        });
        f.call_args(eval_expr, &[Src::Imm(heap_base as i64), Src::Imm(3000)]);
        f.ret();
    });

    // cmd_io: weak caller — a short buffer shuffle plus one evaluation.
    let cmd_io = pb.declare("cmd_io");
    pb.define(cmd_io, |f| {
        let i = Reg::int(40);
        let a = Reg::int(41);
        let w = Reg::int(42);
        f.for_range(i, 0, 12, |f| {
            f.and(a, i, 1023);
            f.shl(a, a, 3);
            f.add(a, a, Src::Imm(iobuf_base as i64));
            f.load(w, a, 0);
            f.add(w, w, i);
            f.store(w, a, 0);
        });
        f.call_args(eval_expr, &[Src::Imm(heap_base as i64), Src::Imm(3000)]);
        f.ret();
    });

    // solve(row=arg0, cols=arg1, d1=arg2, d2=arg3, n in r12) — N-queens,
    // self-recursive.
    let solve = pb.declare("solve");
    pb.define(solve, |f| {
        let (row, cols, d1, d2) = (Reg::arg(0), Reg::arg(1), Reg::arg(2), Reg::arg(3));
        let nq = Reg::int(12);
        let done = f.cond(Cond::Geu, row, Src::Reg(nq));
        f.if_(done, |f| {
            f.li(Reg::ARG0, 1);
            f.ret();
        });
        let col = Reg::int(24);
        let bit = Reg::int(25);
        let conflict = Reg::int(26);
        let count = Reg::int(27);
        let t = Reg::int(28);
        f.li(count, 0);
        f.frame_alloc(6);
        f.for_range(col, 0, Src::Reg(nq), |f| {
            f.li(bit, 1);
            f.shl(bit, bit, Src::Reg(col));
            // conflict = cols & bit | d1 & (bit << row) | d2 & (bit >> ...)
            f.and(conflict, cols, bit);
            f.add(t, col, row);
            f.li(Reg::int(29), 1);
            f.shl(Reg::int(29), Reg::int(29), Src::Reg(t));
            f.and(Reg::int(29), d1, Reg::int(29));
            f.or(conflict, conflict, Reg::int(29));
            f.sub(t, col, row);
            f.add(t, t, 16);
            f.li(Reg::int(29), 1);
            f.shl(Reg::int(29), Reg::int(29), Src::Reg(t));
            f.and(Reg::int(29), d2, Reg::int(29));
            f.or(conflict, conflict, Reg::int(29));
            let free = f.cond(Cond::Eq, conflict, Src::Imm(0));
            f.if_(free, |f| {
                // spill caller state
                f.spill(row, 0);
                f.spill(cols, 1);
                f.spill(d1, 2);
                f.spill(d2, 3);
                f.spill(col, 4);
                f.spill(count, 5);
                // recurse(row+1, cols|bit, ...)
                f.or(Reg::arg(1), cols, bit);
                f.add(t, col, row);
                f.li(Reg::int(29), 1);
                f.shl(Reg::int(29), Reg::int(29), Src::Reg(t));
                f.or(Reg::arg(2), d1, Reg::int(29));
                f.sub(t, col, row);
                f.add(t, t, 16);
                f.li(Reg::int(29), 1);
                f.shl(Reg::int(29), Reg::int(29), Src::Reg(t));
                f.or(Reg::arg(3), d2, Reg::int(29));
                f.addi(Reg::arg(0), row, 1);
                f.call(solve);
                f.mov(t, Reg::ARG0);
                // reload
                f.reload(row, 0);
                f.reload(cols, 1);
                f.reload(d1, 2);
                f.reload(d2, 3);
                f.reload(col, 4);
                f.reload(count, 5);
                f.add(count, count, t);
            });
        });
        f.frame_free(6);
        f.mov(Reg::ARG0, count);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "li", 4, 60);

    let main = pb.declare("main");
    let script_len: i64 = match input {
        Input::A => 60 * scale,
        Input::B => 0,
        Input::C => 170 * scale,
    };
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 11);
        // Reader / initialization.
        svc.burst(f, salt);
        svc.burst(f, salt);
        match input {
            Input::A | Input::C => {
                let k = Reg::int(56);
                let sel = Reg::int(57);
                f.for_range(k, 0, script_len, |f| {
                    // 95% math, 2.5% gc, 2.5% io — deterministic schedule.
                    f.rem(sel, k, 40);
                    let is_gc = f.cond(Cond::Eq, sel, Src::Imm(7));
                    f.if_else(
                        is_gc,
                        |f| f.call(cmd_gc),
                        |f| {
                            let is_io = f.cond(Cond::Eq, sel, Src::Imm(23));
                            f.if_else(is_io, |f| f.call(cmd_io), |f| f.call(cmd_math));
                        },
                    );
                });
            }
            Input::B => {
                let reps = Reg::int(56);
                let total = Reg::int(57);
                f.li(total, 0);
                let n_reps = 12 * scale;
                f.for_range(reps, 0, n_reps, |f| {
                    f.li(Reg::int(12), 6);
                    f.call_args(solve, &[Src::Imm(0), Src::Imm(0), Src::Imm(0), Src::Imm(0)]);
                    f.add(total, total, Reg::ARG0);
                });
            }
        }
        // Printer / teardown.
        svc.burst(f, salt);
        svc.burst(f, salt);
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_isa::Reg;
    use vp_program::Layout;

    #[test]
    fn input_a_runs() {
        let p = build(Input::A, 1);
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 200_000);
    }

    #[test]
    fn queens_solver_counts_solutions() {
        // 6-queens has exactly 4 solutions.
        let p = build(Input::B, 1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        // total accumulated in r57 = 4 per repetition × 12 reps
        assert_eq!(ex.reg(Reg::int(57)), 4 * 12);
    }

    #[test]
    fn input_c_is_longer_than_a() {
        let (pa, pc) = (build(Input::A, 1), build(Input::C, 1));
        let (la, lc) = (Layout::natural(&pa), Layout::natural(&pc));
        let sa = Executor::new(&pa, &la)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        let sc = Executor::new(&pc, &lc)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert!(sc.retired > sa.retired * 2);
    }
}
