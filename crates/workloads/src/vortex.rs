//! `255.vortex` — an object-oriented database workload.
//!
//! Three phases over a chained hash table: bulk *insert*, a long *lookup*
//! mix, and a *delete* sweep. The probe loop is shared by all three phases
//! with different surrounding branch sets; the paper measures vortex as
//! gaining from both inference and linking in the speedup experiment.

use crate::util::{add_service, lcg_bits, lcg_step, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const BUCKETS: i64 = 2048;
const NODE_POOL: usize = 16 * 1024;

/// Input selector matching Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// UMN_sm_red: small reduced input.
    A,
    /// UMN_md_red: medium reduced input (~5x the operations, as in
    /// Table 1's 63M vs 315M).
    B,
    /// UMN_lg_red: the large reduced input that appears in the paper's
    /// Table 3 (but not Table 1) — kept out of the default suite for the
    /// same reason.
    C,
}

/// Builds the workload.
pub fn build(input: Input, scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let ops = match input {
        Input::A => 9_000 * scale,
        // Chains lengthen with the number of inserts, so operation count
        // scales sub-linearly with the Table 1 ratio.
        Input::B => 26_000 * scale,
        Input::C => 34_000 * scale,
    };
    let mut r = rng(0x0255);
    let _ = r.gen_range(0..2u32);
    let mut pb = ProgramBuilder::new();

    // Node pool: node i at pool + 24*i? Keep 8-byte words: node = 2 words
    // (key, next). next = 0 means nil; node indices are 1-based.
    let buckets = pb.zeros(BUCKETS as usize);
    let pool = pb.zeros(2 * NODE_POOL + 2);
    let free_head = pb.data(vec![1]); // next free node index

    // insert(key=arg0)
    let insert = pb.declare("db_insert");
    pb.define(insert, |f| {
        let key = Reg::arg(0);
        let h = Reg::int(24);
        let a = Reg::int(25);
        let node = Reg::int(26);
        let head = Reg::int(27);
        let t = Reg::int(28);
        // allocate a node
        f.li(a, free_head as i64);
        f.load(node, a, 0);
        f.addi(t, node, 1);
        // wrap the pool to stay in bounds (old entries get overwritten —
        // acceptable for a synthetic DB)
        f.rem(t, t, (NODE_POOL - 1) as i64);
        f.addi(t, t, 1);
        f.store(t, a, 0);
        // hash
        f.mul(h, key, 2654435761);
        f.shr(h, h, 16);
        f.and(h, h, BUCKETS - 1);
        // push front
        f.shl(a, h, 3);
        f.add(a, a, Src::Imm(buckets as i64));
        f.load(head, a, 0);
        f.store(node, a, 0);
        f.shl(t, node, 4);
        f.add(t, t, Src::Imm(pool as i64));
        f.store(key, t, 0);
        f.store(head, t, 8);
        f.ret();
    });

    // lookup(key=arg0) -> found(0/1); the shared probe loop.
    let lookup = pb.declare("db_lookup");
    pb.define(lookup, |f| {
        let key = Reg::arg(0);
        let h = Reg::int(24);
        let a = Reg::int(25);
        let node = Reg::int(26);
        let k = Reg::int(27);
        let found = Reg::int(28);
        let steps = Reg::int(29);
        f.mul(h, key, 2654435761);
        f.shr(h, h, 16);
        f.and(h, h, BUCKETS - 1);
        f.shl(a, h, 3);
        f.add(a, a, Src::Imm(buckets as i64));
        f.load(node, a, 0);
        f.li(found, 0);
        f.li(steps, 0);
        f.while_(
            |f| {
                // while node != 0 && found == 0 && steps < 64
                let t = Reg::int(30);
                let c = Reg::int(31);
                f.alu(vp_isa::AluOp::Sltu, t, Reg::ZERO, Src::Reg(node));
                f.alu(vp_isa::AluOp::Seq, c, found, Src::Imm(0));
                f.and(t, t, c);
                f.alu(vp_isa::AluOp::Slt, c, steps, Src::Imm(24));
                f.and(t, t, c);
                f.cond(Cond::Ne, t, Src::Imm(0))
            },
            |f| {
                f.shl(a, node, 4);
                f.add(a, a, Src::Imm(pool as i64));
                f.load(k, a, 0);
                let hit = f.cond(Cond::Eq, k, Src::Reg(key));
                f.if_(hit, |f| f.li(found, 1));
                f.load(node, a, 8);
                f.addi(steps, steps, 1);
            },
        );
        f.mov(Reg::ARG0, found);
        f.ret();
    });

    // delete(key=arg0): unlink the first match.
    let delete = pb.declare("db_delete");
    pb.define(delete, |f| {
        let key = Reg::arg(0);
        let h = Reg::int(24);
        let a = Reg::int(25);
        let node = Reg::int(26);
        let prev_a = Reg::int(27);
        let k = Reg::int(28);
        let steps = Reg::int(29);
        let t = Reg::int(30);
        f.mul(h, key, 2654435761);
        f.shr(h, h, 16);
        f.and(h, h, BUCKETS - 1);
        f.shl(prev_a, h, 3);
        f.add(prev_a, prev_a, Src::Imm(buckets as i64));
        f.load(node, prev_a, 0);
        f.li(steps, 0);
        f.while_(
            |f| {
                let c = Reg::int(31);
                f.alu(vp_isa::AluOp::Sltu, Reg::int(32), Reg::ZERO, Src::Reg(node));
                f.alu(vp_isa::AluOp::Slt, c, steps, Src::Imm(24));
                f.and(c, c, Reg::int(32));
                f.cond(Cond::Ne, c, Src::Imm(0))
            },
            |f| {
                f.shl(a, node, 4);
                f.add(a, a, Src::Imm(pool as i64));
                f.load(k, a, 0);
                let hit = f.cond(Cond::Eq, k, Src::Reg(key));
                f.if_else(
                    hit,
                    |f| {
                        // unlink and stop
                        f.load(t, a, 8);
                        f.store(t, prev_a, 0);
                        f.li(node, 0);
                    },
                    |f| {
                        // advance: prev_a = &node.next
                        f.addi(prev_a, a, 8);
                        f.load(node, a, 8);
                    },
                );
                f.addi(steps, steps, 1);
            },
        );
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "vortex", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let state = Reg::int(56);
        let key = Reg::int(57);
        let i = Reg::int(58);
        let hits = Reg::int(59);
        let salt = Reg::int(60);
        f.li(state, 0xACE1);
        f.li(hits, 0);
        f.li(salt, 47);
        // Schema creation and environment setup.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        // Phase 1: inserts.
        f.for_range(i, 0, ops, |f| {
            lcg_step(f, state);
            lcg_bits(f, state, key, 16);
            f.mov(Reg::arg(0), key);
            f.call(insert);
        });
        svc.burst(f, salt);
        // Phase 2: lookups (3x the inserts).
        f.li(state, 0xACE1);
        f.for_range(i, 0, 3 * ops, |f| {
            lcg_step(f, state);
            lcg_bits(f, state, key, 17); // half the keys were never inserted
            f.mov(Reg::arg(0), key);
            f.call(lookup);
            f.add(hits, hits, Reg::ARG0);
        });
        svc.burst(f, salt);
        // Phase 3: deletes.
        f.li(state, 0xACE1);
        f.for_range(i, 0, ops, |f| {
            lcg_step(f, state);
            lcg_bits(f, state, key, 16);
            f.mov(Reg::arg(0), key);
            f.call(delete);
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn both_inputs_run() {
        for input in [Input::A, Input::B] {
            let p = build(input, 1);
            p.validate().unwrap();
            let layout = Layout::natural(&p);
            let stats = Executor::new(&p, &layout)
                .run(&mut NullSink, &RunConfig::default())
                .unwrap();
            assert_eq!(stats.stop, vp_exec::StopReason::Halted, "{input:?}");
        }
    }

    #[test]
    fn lookups_find_inserted_keys() {
        let p = build(Input::A, 1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let hits = ex.reg(Reg::int(59));
        // 16-bit keys were inserted; lookups draw from 17 bits, so roughly
        // half the lookups can hit (collisions in the wrapped pool lose
        // some).
        assert!(hits > 1_000, "only {hits} lookup hits");
    }

    #[test]
    fn input_c_builds_and_validates() {
        // C is heavy to execute; structural checks only.
        let p = build(Input::C, 1);
        p.validate().unwrap();
    }

    #[test]
    fn input_b_is_larger() {
        let (pa, pb_) = (build(Input::A, 1), build(Input::B, 1));
        let (la, lb) = (Layout::natural(&pa), Layout::natural(&pb_));
        let sa = Executor::new(&pa, &la)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        let sb = Executor::new(&pb_, &lb)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert!(sb.retired > sa.retired * 3);
    }
}
