//! `197.parser` — a tokenizer + recursive-descent parser workload.
//!
//! Phase 1 tokenizes a word stream (character-class dispatch ladder plus a
//! dictionary hash probe); phase 2 parses the token stream with a
//! self-recursive expression grammar. The paper reports 197.parser among
//! the benchmarks with large coverage gains from linking.

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const TEXT_WORDS: usize = 24 * 1024;
const DICT_SIZE: i64 = 1024;

/// Builds the workload.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0197);
    let mut pb = ProgramBuilder::new();

    // Text: small integers standing for characters; 0 = space.
    let text: Vec<u64> = random_words(&mut r, TEXT_WORDS, 32);
    let text_base = pb.data(text);
    let dict_base = pb.zeros(DICT_SIZE as usize);
    let tokens_base = pb.zeros(TEXT_WORDS);

    // tokenize(n=arg0) -> token count
    let tokenize = pb.declare("tokenize");
    pb.define(tokenize, |f| {
        let n = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let ch = Reg::int(26);
        let ntok = Reg::int(27);
        let h = Reg::int(28);
        let t = Reg::int(29);
        f.li(ntok, 0);
        f.for_range(i, 0, Src::Reg(n), |f| {
            f.shl(a, i, 3);
            f.add(a, a, Src::Imm(text_base as i64));
            f.load(ch, a, 0);
            // character-class ladder
            let is_space = f.cond(Cond::Eq, ch, Src::Imm(0));
            f.if_else(
                is_space,
                |f| {
                    // token boundary: nothing emitted
                    f.nop();
                },
                |f| {
                    let is_digit = f.cond(Cond::Ltu, ch, Src::Imm(10));
                    f.if_else(
                        is_digit,
                        |f| {
                            // numeric token (kind 1)
                            f.shl(t, ch, 2);
                            f.or(t, t, 1);
                            f.shl(a, ntok, 3);
                            f.add(a, a, Src::Imm(tokens_base as i64));
                            f.store(t, a, 0);
                            f.addi(ntok, ntok, 1);
                        },
                        |f| {
                            // word token: dictionary probe (kind 2)
                            f.mul(h, ch, 2654435761);
                            f.shr(h, h, 20);
                            f.and(h, h, DICT_SIZE - 1);
                            f.shl(a, h, 3);
                            f.add(a, a, Src::Imm(dict_base as i64));
                            f.load(t, a, 0);
                            f.addi(t, t, 1);
                            f.store(t, a, 0);
                            f.shl(t, h, 2);
                            f.or(t, t, 2);
                            f.shl(a, ntok, 3);
                            f.add(a, a, Src::Imm(tokens_base as i64));
                            f.store(t, a, 0);
                            f.addi(ntok, ntok, 1);
                        },
                    );
                },
            );
        });
        f.mov(Reg::ARG0, ntok);
        f.ret();
    });

    // parse_expr(pos=arg0, limit=arg1, depth=arg2) -> new pos; recursive
    // descent: a numeric token is a leaf, a word token opens a subtree of
    // up to 3 children.
    let parse_expr = pb.declare("parse_expr");
    pb.define(parse_expr, |f| {
        let (pos, limit, depth) = (Reg::arg(0), Reg::arg(1), Reg::arg(2));
        let a = Reg::int(24);
        let tok = Reg::int(25);
        let kind = Reg::int(26);
        let t = Reg::int(27);
        // bounds / depth check
        let done = f.cond(Cond::Geu, pos, Src::Reg(limit));
        f.if_(done, |f| {
            f.mov(Reg::ARG0, pos);
            f.ret();
        });
        let deep = f.cond(Cond::Geu, depth, Src::Imm(12));
        f.if_(deep, |f| {
            f.addi(Reg::ARG0, pos, 1);
            f.ret();
        });
        f.shl(a, pos, 3);
        f.add(a, a, Src::Imm(tokens_base as i64));
        f.load(tok, a, 0);
        f.and(kind, tok, 3);
        let is_leaf = f.cond(Cond::Ne, kind, Src::Imm(2));
        f.if_(is_leaf, |f| {
            f.addi(Reg::ARG0, pos, 1);
            f.ret();
        });
        // word token: parse children; child count from token payload
        let nchild = Reg::int(28);
        f.shr(nchild, tok, 2);
        f.and(nchild, nchild, 3);
        f.addi(nchild, nchild, 1);
        let i = Reg::int(29);
        f.frame_alloc(4);
        f.spill(limit, 1);
        f.spill(depth, 2);
        f.addi(t, pos, 1);
        f.spill(nchild, 3);
        f.li(i, 0);
        f.while_(
            |f| {
                f.reload(Reg::int(30), 3);
                f.cond(Cond::Lt, i, Src::Reg(Reg::int(30)))
            },
            |f| {
                f.spill(i, 0);
                f.mov(Reg::arg(0), t);
                f.reload(Reg::arg(1), 1);
                f.reload(Reg::arg(2), 2);
                f.addi(Reg::arg(2), Reg::arg(2), 1);
                f.call(parse_expr);
                f.mov(t, Reg::ARG0);
                f.reload(i, 0);
                f.addi(i, i, 1);
            },
        );
        f.frame_free(4);
        f.mov(Reg::ARG0, t);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "parser", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let rounds = Reg::int(56);
        let ntok = Reg::int(57);
        let pos = Reg::int(58);
        let salt = Reg::int(60);
        f.li(salt, 43);
        // Dictionary loading.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.for_range(rounds, 0, 3 * scale, |f| {
            // Phase 1: tokenize.
            f.call_args(tokenize, &[Src::Imm(TEXT_WORDS as i64)]);
            f.mov(ntok, Reg::ARG0);
            // Phase 2: parse everything.
            f.li(pos, 0);
            f.while_(
                |f| f.cond(Cond::Ltu, pos, Src::Reg(ntok)),
                |f| {
                    f.mov(Reg::arg(0), pos);
                    f.mov(Reg::arg(1), ntok);
                    f.li(Reg::arg(2), 0);
                    f.call(parse_expr);
                    f.mov(pos, Reg::ARG0);
                },
            );
            // Per-sentence post-processing.
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn runs_to_completion() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 800_000, "retired {}", stats.retired);
    }

    #[test]
    fn dictionary_gets_populated() {
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let dict = p.data[1].base;
        let hits: u64 = (0..DICT_SIZE as u64)
            .map(|i| ex.memory().read(dict + 8 * i))
            .sum();
        assert!(hits > 10_000, "dictionary probes: {hits}");
    }
}
