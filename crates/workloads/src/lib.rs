//! # vp-workloads
//!
//! The benchmark programs of the paper's Table 1, rebuilt as synthetic
//! programs on the `vp-program` builder DSL.
//!
//! The original evaluation used IMPACT-compiled SPEC CPU95/2000 and
//! MediaBench binaries with SPEC train / UMN-reduced inputs — neither of
//! which can be executed on this substrate. Each generator here recreates
//! its benchmark's *documented phase pathology* (the property the paper's
//! per-benchmark discussion depends on):
//!
//! * `124.m88ksim` — two loader phases sharing one launch point with a
//!   flipped branch bias, then a simulation phase;
//! * `130.li` — weak callers sharing a hot callee (the 10% coverage-loss
//!   anecdote), plus a self-recursive queens solver on input B;
//! * `134.perl` — a command loop rooting string/numeric/match phases;
//! * `300.twolf`, `175.vpr` — annealing accept branches whose bias drifts
//!   with temperature (Multi-High branches);
//! * `181.mcf` — cache-hostile pointer chasing; and so on.
//!
//! Register convention: `main` keeps state in `r56..`, command-level
//! functions in `r40..`, leaf functions in `r24..`; arguments in `r4..r11`.
//!
//! [`suite`] returns the full Table 1 matrix (19 program/input pairs);
//! individual generators expose a `scale` knob so tests can run scaled-down
//! instances.

#![warn(missing_docs)]

pub mod go;
pub mod gzip;
pub mod ijpeg;
pub mod li;
pub mod m88ksim;
pub mod mcf;
pub mod mpeg2dec;
pub mod parser;
pub mod perl;
pub mod rng;
pub mod twolf;
pub mod util;
pub mod vortex;
pub mod vpr;

use vp_program::Program;

/// One benchmark/input pair of Table 1.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name, e.g. `"124.m88ksim"`.
    pub bench: &'static str,
    /// Input label, e.g. `"A"`.
    pub input: &'static str,
    /// Description of the input, mirroring Table 1.
    pub input_desc: &'static str,
    /// The program.
    pub program: Program,
}

impl Workload {
    /// `"124.m88ksim A"`-style label.
    pub fn label(&self) -> String {
        format!("{} {}", self.bench, self.input)
    }
}

/// The full Table 1 suite at the given scale (1 = the scale used by the
/// experiment harness; tests use smaller values through the individual
/// generators).
pub fn suite(scale: u32) -> Vec<Workload> {
    let w = |bench, input, input_desc, program| Workload {
        bench,
        input,
        input_desc,
        program,
    };
    vec![
        w("099.go", "A", "SPEC Train", go::build(scale)),
        w("124.m88ksim", "A", "SPEC Train", m88ksim::build(scale)),
        w("130.li", "A", "SPEC Train", li::build(li::Input::A, scale)),
        w("130.li", "B", "6 Queens", li::build(li::Input::B, scale)),
        w("130.li", "C", "Reduced Ref", li::build(li::Input::C, scale)),
        w(
            "132.ijpeg",
            "A",
            "SPEC Train",
            ijpeg::build(ijpeg::Input::A, scale),
        ),
        w(
            "132.ijpeg",
            "B",
            "Custom Faces",
            ijpeg::build(ijpeg::Input::B, scale),
        ),
        w(
            "132.ijpeg",
            "C",
            "Custom Scenery",
            ijpeg::build(ijpeg::Input::C, scale),
        ),
        w(
            "134.perl",
            "A",
            "SPEC Train 1",
            perl::build(perl::Input::A, scale),
        ),
        w(
            "134.perl",
            "B",
            "SPEC Train 2",
            perl::build(perl::Input::B, scale),
        ),
        w(
            "134.perl",
            "C",
            "SPEC Train 3",
            perl::build(perl::Input::C, scale),
        ),
        w("164.gzip", "A", "SPEC Train", gzip::build(scale)),
        w("175.vpr", "A", "SPEC Test", vpr::build(scale)),
        w("181.mcf", "A", "SPEC Test", mcf::build(scale)),
        w("197.parser", "A", "UMN_sm_red", parser::build(scale)),
        w(
            "255.vortex",
            "A",
            "UMN_sm_red",
            vortex::build(vortex::Input::A, scale),
        ),
        w(
            "255.vortex",
            "B",
            "UMN_md_red",
            vortex::build(vortex::Input::B, scale),
        ),
        w("300.twolf", "A", "UMN_sm_red", twolf::build(scale)),
        w("mpeg2dec", "A", "Media Train", mpeg2dec::build(scale)),
    ]
}

/// Looks a workload up by `"bench input"` label.
pub fn by_label(label: &str, scale: u32) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.label() == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_table1_rows() {
        let s = suite(1);
        assert_eq!(s.len(), 19);
        let benches: std::collections::BTreeSet<&str> = s.iter().map(|w| w.bench).collect();
        assert_eq!(benches.len(), 12, "12 distinct benchmarks");
        for w in &s {
            w.program
                .validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.label()));
        }
    }

    #[test]
    fn lookup_by_label() {
        assert!(by_label("130.li B", 1).is_some());
        assert!(by_label("nope X", 1).is_none());
    }
}
