//! `164.gzip` — an LZ77-style compressor/decompressor workload.
//!
//! Two natural phases: a compression pass (hash-probe loop with
//! data-dependent match branches and an inner match-extension loop) and a
//! decompression pass (token dispatch with copy loops). The input mixes a
//! compressible region with a random region, so the match branch carries a
//! genuine, phase-stable bias.

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, Reg, Src};
use vp_program::{Program, ProgramBuilder};

const INPUT_WORDS: usize = 48 * 1024;
const HASH_SIZE: i64 = 4096;

/// Builds the workload; `scale` multiplies the number of passes.
pub fn build(scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0164);
    let mut pb = ProgramBuilder::new();

    // Input: first half highly repetitive (period striding), second half
    // random.
    let mut input = Vec::with_capacity(INPUT_WORDS);
    for i in 0..INPUT_WORDS / 2 {
        input.push(((i % 97) as u64) << 3 | 1);
    }
    input.extend(random_words(&mut r, INPUT_WORDS / 2, 1 << 24));
    let in_base = pb.data(input);
    let hash_base = pb.zeros(HASH_SIZE as usize);
    let out_base = pb.zeros(INPUT_WORDS + 16);
    let dec_base = pb.zeros(INPUT_WORDS + 16);

    // compress(n=arg0) -> token count
    let compress = pb.declare("compress");
    pb.define(compress, |f| {
        let n = Reg::arg(0);
        let i = Reg::int(24);
        let w = Reg::int(25);
        let h = Reg::int(26);
        let a = Reg::int(27);
        let prev = Reg::int(28);
        let out = Reg::int(29);
        let len = Reg::int(30);
        let t = Reg::int(31);
        let t2 = Reg::int(32);
        f.li(out, 0);
        f.li(i, 0);
        f.while_(
            |f| f.cond(Cond::Lt, i, Src::Reg(n)),
            |f| {
                // load current word
                f.shl(a, i, 3);
                f.add(a, a, Src::Imm(in_base as i64));
                f.load(w, a, 0);
                // hash probe
                f.mul(h, w, 2654435761);
                f.shr(h, h, 16);
                f.and(h, h, HASH_SIZE - 1);
                f.shl(a, h, 3);
                f.add(a, a, Src::Imm(hash_base as i64));
                f.load(prev, a, 0);
                f.store(i, a, 0);
                // candidate match? compare words at prev and i
                f.li(len, 0);
                let has_prev = f.cond(Cond::Ltu, prev, Src::Reg(i));
                f.if_(has_prev, |f| {
                    f.shl(t, prev, 3);
                    f.add(t, t, Src::Imm(in_base as i64));
                    f.load(t2, t, 0);
                    let eq = f.cond(Cond::Eq, t2, Src::Reg(w));
                    f.if_(eq, |f| {
                        // extend match up to 8 words
                        let j = Reg::int(33);
                        f.li(j, 1);
                        f.while_(
                            |f| {
                                // j < 8 && input[i+j] == input[prev+j]
                                f.add(t, i, j);
                                f.shl(t, t, 3);
                                f.add(t, t, Src::Imm(in_base as i64));
                                f.load(t, t, 0);
                                f.add(t2, prev, j);
                                f.shl(t2, t2, 3);
                                f.add(t2, t2, Src::Imm(in_base as i64));
                                f.load(t2, t2, 0);
                                f.xor(t, t, t2);
                                // continue while the words are equal and j < 8
                                let cont = Reg::int(34);
                                f.alu(vp_isa::AluOp::Seq, cont, t, Src::Imm(0));
                                f.alu(vp_isa::AluOp::Slt, t2, j, Src::Imm(8));
                                f.and(cont, cont, t2);
                                f.cond(Cond::Ne, cont, Src::Imm(0))
                            },
                            |f| f.addi(Reg::int(33), Reg::int(33), 1),
                        );
                        f.mov(len, j);
                    });
                });
                // emit token: match or literal
                let is_match = f.cond(Cond::Geu, len, Src::Imm(2));
                f.if_else(
                    is_match,
                    |f| {
                        // token = (len << 40) | (dist << 1) | 1
                        f.sub(t, i, prev);
                        f.shl(t, t, 1);
                        f.or(t, t, 1);
                        f.shl(t2, len, 40);
                        f.or(t, t, t2);
                        f.shl(a, out, 3);
                        f.add(a, a, Src::Imm(out_base as i64));
                        f.store(t, a, 0);
                        f.add(i, i, len);
                    },
                    |f| {
                        // literal token: word << 1
                        f.shl(t, w, 1);
                        f.shl(a, out, 3);
                        f.add(a, a, Src::Imm(out_base as i64));
                        f.store(t, a, 0);
                        f.addi(i, i, 1);
                    },
                );
                f.addi(out, out, 1);
            },
        );
        f.mov(Reg::ARG0, out);
        f.ret();
    });

    // decompress(tokens=arg0)
    let decompress = pb.declare("decompress");
    pb.define(decompress, |f| {
        let ntok = Reg::arg(0);
        let k = Reg::int(24);
        let tok = Reg::int(25);
        let a = Reg::int(26);
        let pos = Reg::int(27);
        let t = Reg::int(28);
        let len = Reg::int(29);
        let dist = Reg::int(30);
        let j = Reg::int(31);
        f.li(pos, 0);
        f.for_range(k, 0, Src::Reg(ntok), |f| {
            f.shl(a, k, 3);
            f.add(a, a, Src::Imm(out_base as i64));
            f.load(tok, a, 0);
            f.and(t, tok, 1);
            let is_match = f.cond(Cond::Ne, t, Src::Imm(0));
            f.if_else(
                is_match,
                |f| {
                    f.shr(len, tok, 40);
                    f.shr(dist, tok, 1);
                    f.and(dist, dist, (1i64 << 39) - 1);
                    f.for_range(j, 0, Src::Reg(len), |f| {
                        f.sub(t, pos, dist);
                        f.add(t, t, j);
                        f.shl(t, t, 3);
                        f.add(t, t, Src::Imm(dec_base as i64));
                        f.load(Reg::int(32), t, 0);
                        f.add(t, pos, j);
                        f.shl(t, t, 3);
                        f.add(t, t, Src::Imm(dec_base as i64));
                        f.store(Reg::int(32), t, 0);
                    });
                    f.add(pos, pos, len);
                },
                |f| {
                    f.shr(t, tok, 1);
                    f.shl(a, pos, 3);
                    f.add(a, a, Src::Imm(dec_base as i64));
                    f.store(t, a, 0);
                    f.addi(pos, pos, 1);
                },
            );
        });
        f.mov(Reg::ARG0, pos);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "gzip", 5, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let pass = Reg::int(56);
        let tokens = Reg::int(57);
        let salt = Reg::int(60);
        f.li(salt, 41);
        // File and header handling.
        for _ in 0..3 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        f.for_range(pass, 0, scale, |f| {
            f.call_args(compress, &[Src::Imm(INPUT_WORDS as i64 - 16)]);
            f.mov(tokens, Reg::ARG0);
            svc.burst(f, salt);
            f.call_args(decompress, &[Src::Reg(tokens)]);
            svc.burst(f, salt);
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    #[test]
    fn compress_then_decompress_runs() {
        let p = build(1);
        p.validate().unwrap();
        let layout = Layout::natural(&p);
        let stats = Executor::new(&p, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .unwrap();
        assert_eq!(stats.stop, vp_exec::StopReason::Halted);
        assert!(stats.retired > 1_000_000, "retired {}", stats.retired);
    }

    #[test]
    fn decompression_reconstructs_literals() {
        // Matches copy earlier output; literals write the raw word. As a
        // sanity check, the decompressed repetitive prefix must match the
        // original input's first words.
        let p = build(1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let in_base = p.data[0].base;
        // dec_base is the 4th segment.
        let dec_base = p.data[3].base;
        for i in 0..32 {
            assert_eq!(
                ex.memory().read(dec_base + 8 * i),
                ex.memory().read(in_base + 8 * i),
                "word {i} must round-trip"
            );
        }
    }
}
