//! Deterministic host-side RNG for workload data generation.
//!
//! A SplitMix64 generator with a `gen_range` surface mirroring the subset
//! of `rand` the generators use. Hand-rolled so the workspace builds with
//! zero external dependencies (tier-1 must succeed offline); streams are
//! fixed by seed, so generated workload data is stable across runs.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, high-quality, seedable 64-bit generator
/// (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Uniform mapping of one raw draw onto `0..span` via the multiply-shift
/// reduction; bias is < span/2^64, irrelevant for workload data.
fn bounded(rng: &mut SplitMix64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Range types [`SplitMix64::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + bounded(rng, self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SplitMix64) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + bounded(rng, u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + bounded(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SplitMix64) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + bounded(rng, span) as i64) as i32
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + bounded(rng, (end - start) as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(SplitMix64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(r.gen_range(0..10u64) < 10);
            let v = r.gen_range(5..8u32);
            assert!((5..8).contains(&v));
            let v = r.gen_range(0..3usize);
            assert!(v < 3);
            let v = r.gen_range(0..=4usize);
            assert!(v <= 4);
            let v = r.gen_range(-3..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SplitMix64::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(b), "bucket {i} = {b} far from 1000");
        }
    }
}
