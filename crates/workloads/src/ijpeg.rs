//! `132.ijpeg` — an image-compression pipeline workload.
//!
//! Per 8×8 block: color conversion (floating point), a separable DCT-style
//! butterfly transform (floating point), quantization (the data-dependent
//! zero branch), and run-length entropy coding (branchy). The three inputs
//! change the image content: *faces* are smooth (most coefficients
//! quantize to zero), *scenery* is noisy — flipping the quantizer branch
//! bias exactly as different photographic inputs did in the original.

use crate::util::{add_service, random_words, rng};
use vp_isa::{Cond, FaluOp, Reg, Src};
use vp_program::{Program, ProgramBuilder};

/// Input selector matching Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Input {
    /// SPEC train: mixed-content image.
    A,
    /// Custom faces: smooth image, small coefficients.
    B,
    /// Custom scenery: noisy image, large coefficients.
    C,
}

const BLOCKS: i64 = 600;
const BLOCK_WORDS: usize = 64;

/// Builds the workload.
pub fn build(input: Input, scale: u32) -> Program {
    let scale = scale.max(1) as i64;
    let mut r = rng(0x0132);
    let mut pb = ProgramBuilder::new();

    // Image: BLOCKS blocks of 64 samples; smoothness by input.
    let n_samples = BLOCKS as usize * BLOCK_WORDS;
    let image: Vec<u64> = match input {
        Input::B => (0..n_samples)
            .map(|i| 128 + ((i / 64) % 8) as u64)
            .collect(),
        Input::C => random_words(&mut r, n_samples, 256),
        Input::A => (0..n_samples)
            .map(|i| {
                if (i / (64 * 200)) % 2 == 0 {
                    128 + (i % 4) as u64
                } else {
                    r.gen_range(0..256u64)
                }
            })
            .collect(),
    };
    let image_base = pb.data(image);
    let coeff_base = pb.zeros(BLOCK_WORDS);
    let out_base = pb.zeros(n_samples + 64);

    // transform(block_addr=arg0): color convert + butterfly into coeffs.
    let transform = pb.declare("transform");
    pb.define(transform, |f| {
        let base = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let w = Reg::int(26);
        let fx = Reg::fp(8);
        let fy = Reg::fp(9);
        let fscale = Reg::fp(10);
        let fbias = Reg::fp(11);
        f.fli(fscale, 0.587);
        f.fli(fbias, -128.0);
        // color convert: coeff[i] = (sample * 0.587 - 128) summed in pairs
        f.for_range(i, 0, 32, |f| {
            f.shl(a, i, 4); // pairs: 2 words apart
            f.add(a, a, Src::Reg(base));
            f.load(w, a, 0);
            f.itof(fx, w);
            f.falu(FaluOp::Add, fx, fx, fbias);
            f.falu(FaluOp::Mul, fx, fx, fscale);
            f.load(w, a, 8);
            f.itof(fy, w);
            f.falu(FaluOp::Add, fy, fy, fbias);
            f.falu(FaluOp::Mul, fy, fy, fscale);
            // butterfly: sum and difference
            f.falu(FaluOp::Add, Reg::fp(12), fx, fy);
            f.falu(FaluOp::Sub, Reg::fp(13), fx, fy);
            f.ftoi(w, Reg::fp(12));
            f.shl(a, i, 3);
            f.add(a, a, Src::Imm(coeff_base as i64));
            f.store(w, a, 0);
            f.ftoi(w, Reg::fp(13));
            f.store(w, a, 32 * 8);
        });
        f.ret();
    });

    // quantize_encode(out_pos=arg0) -> new out_pos: the branchy stage.
    let quantize = pb.declare("quantize_encode");
    pb.define(quantize, |f| {
        let pos = Reg::arg(0);
        let i = Reg::int(24);
        let a = Reg::int(25);
        let c = Reg::int(26);
        let q = Reg::int(27);
        let run = Reg::int(28);
        let t = Reg::int(29);
        f.li(run, 0);
        f.for_range(i, 0, 64, |f| {
            f.shl(a, i, 3);
            f.add(a, a, Src::Imm(coeff_base as i64));
            f.load(c, a, 0);
            // |c| / 16 quantization
            let neg = f.cond(Cond::Lt, c, Src::Imm(0));
            f.if_(neg, |f| f.sub(c, Reg::ZERO, c));
            f.shr(q, c, 4);
            // The input-bias branch: zero after quantization?
            let zero = f.cond(Cond::Eq, q, Src::Imm(0));
            f.if_else(
                zero,
                |f| f.addi(run, run, 1),
                |f| {
                    // emit (run, level)
                    f.shl(t, run, 16);
                    f.or(t, t, q);
                    f.shl(a, pos, 3);
                    f.add(a, a, Src::Imm(out_base as i64));
                    f.store(t, a, 0);
                    f.addi(pos, pos, 1);
                    f.li(run, 0);
                },
            );
        });
        f.mov(Reg::ARG0, pos);
        f.ret();
    });

    let svc = add_service(&mut pb, &mut r, "ijpeg", 4, 60);

    let main = pb.declare("main");
    pb.define(main, |f| {
        let salt = Reg::int(60);
        f.li(salt, 51);
        // Image reading and marker parsing.
        for _ in 0..2 {
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        }
        let rep = Reg::int(56);
        let blk = Reg::int(57);
        let addr = Reg::int(58);
        let pos = Reg::int(59);
        f.for_range(rep, 0, 3 * scale, |f| {
            f.li(pos, 0);
            f.for_range(blk, 0, BLOCKS, |f| {
                f.mul(addr, blk, (BLOCK_WORDS * 8) as i64);
                f.add(addr, addr, Src::Imm(image_base as i64));
                f.mov(Reg::arg(0), addr);
                f.call(transform);
                f.mov(Reg::arg(0), pos);
                f.call(quantize);
                f.mov(pos, Reg::ARG0);
            });
            // Per-pass file output.
            svc.burst(f, salt);
            f.addi(salt, salt, 1);
        });
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_exec::{Executor, NullSink, RunConfig};
    use vp_program::Layout;

    fn emitted_tokens(input: Input) -> u64 {
        let p = build(input, 1);
        let layout = Layout::natural(&p);
        let mut ex = Executor::new(&p, &layout);
        ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        ex.reg(Reg::int(59))
    }

    #[test]
    fn all_inputs_run() {
        for input in [Input::A, Input::B, Input::C] {
            let p = build(input, 1);
            p.validate().unwrap();
            let layout = Layout::natural(&p);
            let stats = Executor::new(&p, &layout)
                .run(&mut NullSink, &RunConfig::default())
                .unwrap();
            assert_eq!(stats.stop, vp_exec::StopReason::Halted, "{input:?}");
            assert!(stats.retired > 500_000);
        }
    }

    #[test]
    fn faces_quantize_to_fewer_tokens_than_scenery() {
        let faces = emitted_tokens(Input::B);
        let scenery = emitted_tokens(Input::C);
        assert!(
            faces * 2 < scenery,
            "smooth input must emit far fewer tokens: faces={faces} scenery={scenery}"
        );
    }
}
