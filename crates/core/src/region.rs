//! Region marking structures: temperatures, weights and taken
//! probabilities over blocks and control-flow arcs (paper Section 3.2.1).

use std::collections::BTreeMap;
use vp_isa::{BlockId, FuncId};
use vp_program::{EdgeKind, Function};

/// Temperature lattice used during region identification.
///
/// Blocks start `Unknown` and may become `Hot`; control-flow arcs may be
/// `Hot`, `Cold`, or `Unknown` (Section 3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Temp {
    /// No information yet.
    #[default]
    Unknown,
    /// Part of the hot region.
    Hot,
    /// Positively excluded from the hot region.
    Cold,
}

/// Identifies one outgoing control-flow arc: a block has at most one arc of
/// each [`EdgeKind`], so the pair is unique and the target is implied by the
/// terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcKey {
    /// Source block.
    pub from: BlockId,
    /// Which outgoing arc of the source.
    pub kind: EdgeKind,
}

impl ArcKey {
    /// Convenience constructor.
    pub fn new(from: BlockId, kind: EdgeKind) -> ArcKey {
        ArcKey { from, kind }
    }

    /// Resolves the arc's target block within `f`, if the arc exists and is
    /// intra-function.
    pub fn target(&self, f: &Function) -> Option<BlockId> {
        f.successors(self.from)
            .into_iter()
            .find(|&(_, k)| k == self.kind)
            .map(|(b, _)| b)
    }
}

/// Per-function marking produced by region identification.
#[derive(Debug, Clone)]
pub struct FuncMark {
    /// The marked function.
    pub func: FuncId,
    block_temp: Vec<Temp>,
    block_weight: Vec<u64>,
    taken_prob: Vec<Option<f64>>,
    arc_temp: BTreeMap<ArcKey, Temp>,
    arc_weight: BTreeMap<ArcKey, u64>,
    /// Blocks whose conditional branch appeared in the hot-spot profile.
    profiled: Vec<bool>,
}

impl FuncMark {
    /// Creates an all-`Unknown` marking for a function with `blocks`
    /// blocks.
    pub fn new(func: FuncId, blocks: usize) -> FuncMark {
        FuncMark {
            func,
            block_temp: vec![Temp::Unknown; blocks],
            block_weight: vec![0; blocks],
            taken_prob: vec![None; blocks],
            arc_temp: BTreeMap::new(),
            arc_weight: BTreeMap::new(),
            profiled: vec![false; blocks],
        }
    }

    /// Temperature of a block.
    pub fn block_temp(&self, b: BlockId) -> Temp {
        self.block_temp[b.0 as usize]
    }

    /// Sets a block temperature (first assignment wins; `Unknown` never
    /// overwrites a known temperature).
    pub fn set_block_temp(&mut self, b: BlockId, t: Temp) -> bool {
        let slot = &mut self.block_temp[b.0 as usize];
        if *slot == Temp::Unknown && t != Temp::Unknown {
            *slot = t;
            true
        } else {
            false
        }
    }

    /// Profile weight (executed count) of a block.
    pub fn block_weight(&self, b: BlockId) -> u64 {
        self.block_weight[b.0 as usize]
    }

    /// Sets a block's profile weight.
    pub fn set_block_weight(&mut self, b: BlockId, w: u64) {
        self.block_weight[b.0 as usize] = w;
    }

    /// Taken probability of the block's conditional branch, if profiled.
    pub fn taken_prob(&self, b: BlockId) -> Option<f64> {
        self.taken_prob[b.0 as usize]
    }

    /// Sets the taken probability of a block's conditional branch.
    pub fn set_taken_prob(&mut self, b: BlockId, p: f64) {
        self.taken_prob[b.0 as usize] = Some(p);
    }

    /// Marks the block's branch as present in the hot-spot profile.
    pub fn set_profiled(&mut self, b: BlockId) {
        self.profiled[b.0 as usize] = true;
    }

    /// Whether the block's branch appeared in the hot-spot profile.
    pub fn is_profiled(&self, b: BlockId) -> bool {
        self.profiled[b.0 as usize]
    }

    /// Temperature of an arc (`Unknown` when never assigned).
    pub fn arc_temp(&self, a: ArcKey) -> Temp {
        self.arc_temp.get(&a).copied().unwrap_or(Temp::Unknown)
    }

    /// Sets an arc temperature (first assignment wins).
    pub fn set_arc_temp(&mut self, a: ArcKey, t: Temp) -> bool {
        if t == Temp::Unknown {
            return false;
        }
        match self.arc_temp.get(&a) {
            Some(_) => false,
            None => {
                self.arc_temp.insert(a, t);
                true
            }
        }
    }

    /// Profile weight of an arc.
    pub fn arc_weight(&self, a: ArcKey) -> u64 {
        self.arc_weight.get(&a).copied().unwrap_or(0)
    }

    /// Sets an arc's profile weight.
    pub fn set_arc_weight(&mut self, a: ArcKey, w: u64) {
        self.arc_weight.insert(a, w);
    }

    /// Number of blocks in the function.
    pub fn len(&self) -> usize {
        self.block_temp.len()
    }

    /// Whether the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.block_temp.is_empty()
    }

    /// Blocks currently marked Hot.
    pub fn hot_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.block_temp
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Temp::Hot)
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Whether a block is selected for extraction (Hot).
    pub fn is_selected(&self, b: BlockId) -> bool {
        self.block_temp(b) == Temp::Hot
    }
}

/// The marked region of one program phase: a set of functions with
/// block/arc temperatures (often spanning function boundaries, as in the
/// paper's Figure 1).
#[derive(Debug, Clone)]
pub struct Region {
    /// Index of the phase this region was identified for.
    pub phase: usize,
    /// Markings keyed by function.
    pub marks: BTreeMap<FuncId, FuncMark>,
}

impl Region {
    /// Creates an empty region for a phase.
    pub fn new(phase: usize) -> Region {
        Region {
            phase,
            marks: BTreeMap::new(),
        }
    }

    /// The marking for `f`, creating an all-`Unknown` one if absent.
    pub fn mark_mut(&mut self, f: FuncId, blocks: usize) -> &mut FuncMark {
        self.marks
            .entry(f)
            .or_insert_with(|| FuncMark::new(f, blocks))
    }

    /// The marking for `f`, if the function is part of the region.
    pub fn mark(&self, f: FuncId) -> Option<&FuncMark> {
        self.marks.get(&f)
    }

    /// Total number of Hot blocks across all marked functions.
    pub fn hot_block_count(&self) -> usize {
        self.marks.values().map(|m| m.hot_blocks().count()).sum()
    }

    /// Functions that contain at least one Hot block.
    pub fn hot_funcs(&self) -> Vec<FuncId> {
        self.marks
            .iter()
            .filter(|(_, m)| m.hot_blocks().next().is_some())
            .map(|(f, _)| *f)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_assignment_wins() {
        let mut m = FuncMark::new(FuncId(0), 3);
        assert!(m.set_block_temp(BlockId(0), Temp::Hot));
        assert!(!m.set_block_temp(BlockId(0), Temp::Cold));
        assert_eq!(m.block_temp(BlockId(0)), Temp::Hot);
    }

    #[test]
    fn unknown_never_overwrites() {
        let mut m = FuncMark::new(FuncId(0), 1);
        assert!(!m.set_block_temp(BlockId(0), Temp::Unknown));
        assert_eq!(m.block_temp(BlockId(0)), Temp::Unknown);
    }

    #[test]
    fn arc_temps_default_unknown() {
        let mut m = FuncMark::new(FuncId(0), 2);
        let a = ArcKey::new(BlockId(0), EdgeKind::Goto);
        assert_eq!(m.arc_temp(a), Temp::Unknown);
        assert!(m.set_arc_temp(a, Temp::Cold));
        assert!(!m.set_arc_temp(a, Temp::Hot));
        assert_eq!(m.arc_temp(a), Temp::Cold);
    }

    #[test]
    fn hot_blocks_enumerated() {
        let mut m = FuncMark::new(FuncId(0), 4);
        m.set_block_temp(BlockId(1), Temp::Hot);
        m.set_block_temp(BlockId(3), Temp::Hot);
        let hot: Vec<BlockId> = m.hot_blocks().collect();
        assert_eq!(hot, vec![BlockId(1), BlockId(3)]);
        assert!(m.is_selected(BlockId(1)));
        assert!(!m.is_selected(BlockId(0)));
    }

    #[test]
    fn region_creates_marks_on_demand() {
        let mut r = Region::new(0);
        r.mark_mut(FuncId(2), 5)
            .set_block_temp(BlockId(0), Temp::Hot);
        assert_eq!(r.hot_block_count(), 1);
        assert_eq!(r.hot_funcs(), vec![FuncId(2)]);
        assert!(r.mark(FuncId(1)).is_none());
    }
}
