//! Step 3b: package linking and ordering (paper Section 3.3.4).
//!
//! Several phases often share a root function, but a launch point can
//! target only one package. Linking retargets a cold exit of one package at
//! the corresponding *hot* block of a sibling package — legal only when the
//! calling contexts are identical — so execution migrates to the package
//! matching the current phase.
//!
//! Following the paper, a link always goes to the first compatible package
//! "to the right" in a chosen ordering (wrapping around), and the left-most
//! package takes precedence for shared entry points. That reduces linking
//! to an ordering problem, ranked by the accumulator formula: with
//! per-package ratios `r_i = incoming links / package branches` in order,
//! `rank = r_1 + r_1 r_2 + r_1 r_2 r_3 + …` — a rough likelihood of
//! remaining inside packaged code.

use crate::package::Package;
use crate::PackConfig;
use std::collections::BTreeMap;
use vp_isa::{BlockId, CodeRef, FuncId};
use vp_trace::Counter;

/// Package groups ordered by exhaustive permutation search.
static ORDER_EXHAUSTIVE: Counter = Counter::new("core.link.ordering_exhaustive");
/// Package groups ordered by the greedy heuristic.
static ORDER_GREEDY: Counter = Counter::new("core.link.ordering_greedy");
/// Candidate orderings ranked across both strategies.
static ORDERINGS_RANKED: Counter = Counter::new("core.link.orderings_ranked");
/// Inter-package links installed.
static LINKS_INSTALLED: Counter = Counter::new("core.link.links");

/// One installed inter-package link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Index (into the global package list) of the package being exited.
    pub from_pkg: usize,
    /// The exit block being retargeted.
    pub from_block: BlockId,
    /// Index of the destination package.
    pub to_pkg: usize,
    /// Destination hot block.
    pub to_block: BlockId,
}

/// The complete linking decision for a set of packages.
#[derive(Debug, Clone, Default)]
pub struct LinkPlan {
    /// Links to install.
    pub links: Vec<Link>,
    /// For each original entry location, the package whose launch point
    /// owns it.
    pub entry_owner: BTreeMap<CodeRef, usize>,
    /// Chosen ordering rank per root (diagnostics).
    pub rank_by_root: Vec<(FuncId, f64)>,
}

/// Ranks one ordering of a package group and returns the links it implies.
///
/// `order` holds indices into the global package list; exits search to the
/// right with wrap-around for the first context-compatible hot block.
pub fn rank_ordering(packages: &[Package], order: &[usize]) -> (f64, Vec<Link>) {
    let n = order.len();
    let mut links = Vec::new();
    let mut incoming = vec![0usize; n];
    for (pos, &gi) in order.iter().enumerate() {
        for (exit_block, meta) in packages[gi].exits() {
            for step in 1..n {
                let qpos = (pos + step) % n;
                let gj = order[qpos];
                if let Some(tb) = packages[gj].find_hot_block(meta.origin, &meta.context) {
                    links.push(Link {
                        from_pkg: gi,
                        from_block: exit_block,
                        to_pkg: gj,
                        to_block: tb,
                    });
                    incoming[qpos] += 1;
                    break;
                }
            }
        }
    }
    let ratios: Vec<f64> = order
        .iter()
        .enumerate()
        .map(|(pos, &gi)| {
            let b = packages[gi].branch_blocks;
            if b == 0 {
                0.0
            } else {
                incoming[pos] as f64 / b as f64
            }
        })
        .collect();
    let mut rank = 0.0;
    let mut weight = 1.0;
    for r in &ratios {
        weight *= r;
        rank += weight;
    }
    (rank, links)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..n).collect();
    fn heap(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut cur, &mut out);
    out
}

/// Chooses the best ordering for one group: exhaustively for small groups,
/// greedily (best next package by partial rank) beyond
/// `max_exhaustive_orderings`.
fn best_order(packages: &[Package], group: &[usize], max_exhaustive: usize) -> (f64, Vec<usize>) {
    if group.len() <= max_exhaustive {
        ORDER_EXHAUSTIVE.incr();
        let mut best: Option<(f64, Vec<usize>)> = None;
        for perm in permutations(group.len()) {
            let order: Vec<usize> = perm.iter().map(|&i| group[i]).collect();
            let (rank, _) = rank_ordering(packages, &order);
            ORDERINGS_RANKED.incr();
            if best.as_ref().is_none_or(|(r, _)| rank > *r) {
                best = Some((rank, order));
            }
        }
        best.expect("non-empty group")
    } else {
        ORDER_GREEDY.incr();
        let mut remaining: Vec<usize> = group.to_vec();
        let mut order = Vec::new();
        while !remaining.is_empty() {
            let mut best = (f64::NEG_INFINITY, 0);
            for (i, &cand) in remaining.iter().enumerate() {
                let mut trial = order.clone();
                trial.push(cand);
                let (rank, _) = rank_ordering(packages, &trial);
                ORDERINGS_RANKED.incr();
                if rank > best.0 {
                    best = (rank, i);
                }
            }
            order.push(remaining.remove(best.1));
        }
        let (rank, _) = rank_ordering(packages, &order);
        (rank, order)
    }
}

/// Plans links and entry ownership for all packages.
///
/// Packages are grouped by root function; with `cfg.linking` disabled, no
/// links are installed and each shared entry is owned by the
/// earliest-detected phase's package (only one package reachable — the Fig.
/// 8 "no linking" bars).
pub fn plan_links(packages: &[Package], cfg: &PackConfig) -> LinkPlan {
    let mut groups: BTreeMap<FuncId, Vec<usize>> = BTreeMap::new();
    for (i, p) in packages.iter().enumerate() {
        groups.entry(p.root).or_default().push(i);
    }

    let mut plan = LinkPlan::default();
    for (root, group) in groups {
        let (order, rank) = if cfg.linking && group.len() > 1 {
            let (rank, order) = best_order(packages, &group, cfg.max_exhaustive_orderings);
            let (_, links) = rank_ordering(packages, &order);
            LINKS_INSTALLED.add(links.len() as u64);
            plan.links.extend(links);
            (order, rank)
        } else {
            (group.clone(), 0.0)
        };
        plan.rank_by_root.push((root, rank));
        // Entry precedence: the left-most package in the ordering owns a
        // shared entry point.
        for &gi in &order {
            for (_, origin) in &packages[gi].entries {
                plan.entry_owner.entry(*origin).or_insert(gi);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PkgBlockMeta;
    use vp_program::{Block, Terminator};

    /// Builds a synthetic package whose blocks are: one hot block per
    /// `hot` origin, one exit per `exits` origin (contexts empty).
    fn pkg(
        phase: usize,
        root: u32,
        hot: &[CodeRef],
        exits: &[CodeRef],
        branches: usize,
    ) -> Package {
        let mut blocks = Vec::new();
        let mut meta = Vec::new();
        for &h in hot {
            blocks.push(Block::empty(Terminator::Ret));
            meta.push(PkgBlockMeta {
                origin: h,
                context: vec![],
                is_exit: false,
                is_stub: false,
            });
        }
        for &e in exits {
            blocks.push(Block::empty(Terminator::Goto(e)));
            meta.push(PkgBlockMeta {
                origin: e,
                context: vec![],
                is_exit: true,
                is_stub: false,
            });
        }
        let entries = vec![(BlockId(0), hot[0])];
        Package {
            phase,
            root: FuncId(root),
            name: format!("pkg{phase}"),
            blocks,
            meta,
            entries,
            branch_blocks: branches,
        }
    }

    #[test]
    fn exit_links_to_sibling_hot_block() {
        let a_hot = CodeRef::new(0, 0);
        let b_hot = CodeRef::new(0, 5);
        // Package A exits where package B is hot, and vice versa.
        let pa = pkg(0, 0, &[a_hot], &[b_hot], 2);
        let pb = pkg(1, 0, &[b_hot], &[a_hot], 2);
        let plan = plan_links(&[pa, pb], &PackConfig::default());
        assert_eq!(plan.links.len(), 2);
        assert!(plan.links.iter().any(|l| l.from_pkg == 0 && l.to_pkg == 1));
        assert!(plan.links.iter().any(|l| l.from_pkg == 1 && l.to_pkg == 0));
    }

    #[test]
    fn linking_disabled_installs_nothing() {
        let a_hot = CodeRef::new(0, 0);
        let b_hot = CodeRef::new(0, 5);
        let pa = pkg(0, 0, &[a_hot], &[b_hot], 2);
        let pb = pkg(1, 0, &[b_hot], &[a_hot], 2);
        let cfg = PackConfig {
            linking: false,
            ..PackConfig::default()
        };
        let plan = plan_links(&[pa, pb], &cfg);
        assert!(plan.links.is_empty());
        // Shared entries still owned by the first package.
        assert_eq!(plan.entry_owner[&a_hot], 0);
    }

    #[test]
    fn context_mismatch_prevents_link() {
        let t = CodeRef::new(0, 5);
        let mut pa = pkg(0, 0, &[CodeRef::new(0, 0)], &[t], 1);
        // A's exit is in context [site X]; B's hot copy of t is in context
        // [site Y]: incompatible (the paper's B1' vs B1'' case).
        pa.meta.last_mut().unwrap().context = vec![CodeRef::new(0, 9)];
        let mut pb = pkg(1, 0, &[t], &[], 1);
        pb.meta[0].context = vec![CodeRef::new(0, 8)];
        let plan = plan_links(&[pa, pb], &PackConfig::default());
        assert!(plan.links.is_empty(), "different contexts must not link");
    }

    #[test]
    fn different_roots_never_link() {
        let t = CodeRef::new(0, 5);
        let pa = pkg(0, 0, &[CodeRef::new(0, 0)], &[t], 1);
        let pb = pkg(1, 1, &[t], &[], 1);
        let plan = plan_links(&[pa, pb], &PackConfig::default());
        assert!(plan.links.is_empty());
    }

    #[test]
    fn rank_accumulator_matches_paper_example() {
        // The Figure 7(c) walkthrough: ratios 2/5, 2/5, 3/6 → 0.64.
        // Reproduce the arithmetic directly.
        let ratios = [2.0f64 / 5.0, 2.0 / 5.0, 3.0 / 6.0];
        let mut rank = 0.0f64;
        let mut w = 1.0f64;
        for r in ratios {
            w *= r;
            rank += w;
        }
        assert!((rank - 0.64).abs() < 1e-12);
    }

    #[test]
    fn ordering_search_prefers_more_reachable_packages() {
        // Three packages on one root; p0 exits to p1's hot block, p1 exits
        // to p2's, p2 exits to p0's: a cycle — any rotation links fully.
        let h: Vec<CodeRef> = (0..3).map(|i| CodeRef::new(0, i)).collect();
        let pkgs = vec![
            pkg(0, 0, &[h[0]], &[h[1]], 1),
            pkg(1, 0, &[h[1]], &[h[2]], 1),
            pkg(2, 0, &[h[2]], &[h[0]], 1),
        ];
        let plan = plan_links(&pkgs, &PackConfig::default());
        assert_eq!(plan.links.len(), 3);
        let (root, rank) = plan.rank_by_root[0];
        assert_eq!(root, FuncId(0));
        assert!(rank > 0.0);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(1).len(), 1);
    }

    #[test]
    fn greedy_path_used_for_large_groups() {
        let h: Vec<CodeRef> = (0..4).map(|i| CodeRef::new(0, i)).collect();
        let pkgs: Vec<Package> = (0..4)
            .map(|i| pkg(i, 0, &[h[i]], &[h[(i + 1) % 4]], 1))
            .collect();
        let cfg = PackConfig {
            max_exhaustive_orderings: 2,
            ..PackConfig::default()
        };
        let plan = plan_links(&pkgs, &cfg);
        assert!(!plan.links.is_empty());
    }
}
