//! Step 3a: package construction (paper Sections 3.3.1–3.3.3).
//!
//! For each root function of a region this module assembles a *package*: a
//! new function body holding per-phase copies of the region's hot blocks.
//!
//! * **Function pruning** keeps only Hot blocks and Hot arcs; every control
//!   path leaving the kept subgraph is routed through an *exit block*
//!   carrying dummy consumers ([`vp_isa::Inst::Consume`]) for the registers
//!   live at the exit, so data-flow analysis inside the package stays
//!   sound (Section 3.3.1).
//! * **Root functions** are found on the region call graph: functions
//!   without region callers (ignoring call-graph back edges), functions
//!   that cannot be inlined (no prologue/epilogue/path), and self-recursive
//!   functions (Section 3.3.2). *Entry blocks* are kept blocks without
//!   forward predecessors in the pruned subgraph.
//! * **Partial inlining** expands each root through its region call sites,
//!   copying only the callee blocks reachable from the prologue and
//!   discarding disjoint segments; inlined returns become jumps to the call
//!   continuation (Section 3.3.3).

use crate::ident::CfgCache;
use crate::region::{ArcKey, FuncMark, Region, Temp};
use crate::PackConfig;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use vp_isa::{BlockId, CodeRef, FuncId, Inst};
use vp_program::{Block, Cfg, EdgeKind, Function, Liveness, Program, Terminator};
use vp_trace::Counter;

/// Packages built.
static PKG_BUILT: Counter = Counter::new("core.pkg.packages");
/// Hot blocks copied into packages.
static PKG_COPIED: Counter = Counter::new("core.pkg.blocks_copied");
/// Blocks pruned (left behind) per instantiation.
static PKG_PRUNED: Counter = Counter::new("core.pkg.blocks_pruned");
/// Exit blocks inserted (heads only, not stubs/trampolines).
static PKG_EXITS: Counter = Counter::new("core.pkg.exit_blocks");
/// Partial-inline expansions performed.
static PKG_INLINES: Counter = Counter::new("core.pkg.inlines");

/// Sentinel function id marking package-internal targets before the
/// rewriter assigns the package its real id.
pub const PKG_SELF: FuncId = FuncId(u32::MAX);

/// Provenance of one package block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PkgBlockMeta {
    /// For copied blocks, the original block; for exit blocks, the original
    /// block the exit transfers to.
    pub origin: CodeRef,
    /// Inlining context: the chain of original call-site blocks from the
    /// root down to this block's function instance. Two package blocks are
    /// link-compatible only when both origin and context match
    /// (Section 3.3.4's "identical calling contexts").
    pub context: Vec<CodeRef>,
    /// Whether this is an exit block back to original code (the block cold
    /// arcs target; inter-package links retarget its terminator).
    pub is_exit: bool,
    /// Whether this is a frame-reconstruction stub or trampoline behind an
    /// exit from inlined code — never a link source or target.
    pub is_stub: bool,
}

/// An extracted package, not yet installed into a program.
#[derive(Debug, Clone)]
pub struct Package {
    /// Phase (hot spot) index this package serves.
    pub phase: usize,
    /// Root function the package was grown from.
    pub root: FuncId,
    /// Suggested function name.
    pub name: String,
    /// Package body. Internal targets use [`PKG_SELF`]; exits and calls
    /// reference original code.
    pub blocks: Vec<Block>,
    /// Per-block provenance, parallel to `blocks`.
    pub meta: Vec<PkgBlockMeta>,
    /// Package entry blocks paired with the original locations they stand
    /// for (launch-point targets).
    pub entries: Vec<(BlockId, CodeRef)>,
    /// Number of blocks ending in a conditional branch — the denominator of
    /// the Section 3.3.4 link-ranking ratio.
    pub branch_blocks: usize,
}

impl Package {
    /// Static instructions in the package (terminators at unit cost).
    pub fn static_insts(&self) -> u64 {
        self.blocks.iter().map(Block::static_insts).sum()
    }

    /// The package block standing for `origin` in calling context `ctx`,
    /// excluding exit blocks (used by linking).
    pub fn find_hot_block(&self, origin: CodeRef, ctx: &[CodeRef]) -> Option<BlockId> {
        self.meta
            .iter()
            .position(|m| !m.is_exit && !m.is_stub && m.origin == origin && m.context == ctx)
            .map(|i| BlockId(i as u32))
    }

    /// Exit blocks (link sources) with their targets and contexts; stub and
    /// trampoline blocks behind them are excluded.
    pub fn exits(&self) -> impl Iterator<Item = (BlockId, &PkgBlockMeta)> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_exit && !m.is_stub)
            .map(|(i, m)| (BlockId(i as u32), m))
    }
}

/// Whether arc `a` of `f` is part of the extracted region.
fn arc_kept(m: &FuncMark, f: &Function, a: ArcKey) -> bool {
    m.arc_temp(a) == Temp::Hot && a.target(f).is_some_and(|t| m.is_selected(t))
}

/// Kept blocks reachable from `starts` through kept arcs.
fn reachable_kept(m: &FuncMark, f: &Function, starts: &[BlockId]) -> BTreeSet<BlockId> {
    let mut seen: BTreeSet<BlockId> = starts
        .iter()
        .copied()
        .filter(|&b| m.is_selected(b))
        .collect();
    let mut work: Vec<BlockId> = seen.iter().copied().collect();
    while let Some(b) = work.pop() {
        for (t, kind) in f.successors(b) {
            if arc_kept(m, f, ArcKey::new(b, kind)) && seen.insert(t) {
                work.push(t);
            }
        }
    }
    seen
}

/// Entry blocks of the pruned subgraph: kept blocks without kept forward
/// predecessors (back edges classified on the full CFG).
fn entry_blocks(m: &FuncMark, f: &Function, cfg: &Cfg) -> Vec<BlockId> {
    let mut entries: Vec<BlockId> = f
        .block_ids()
        .filter(|&b| m.is_selected(b))
        .filter(|&b| {
            !cfg.preds(b).iter().any(|&(p, kind)| {
                !cfg.is_back_edge(p, b) && m.is_selected(p) && arc_kept(m, f, ArcKey::new(p, kind))
            })
        })
        .collect();
    if entries.is_empty() {
        // Fully cyclic selection: fall back to the function entry if
        // selected, else the lowest selected block.
        if m.is_selected(f.entry) {
            entries.push(f.entry);
        } else if let Some(b) = f.block_ids().find(|&b| m.is_selected(b)) {
            entries.push(b);
        }
    }
    entries
}

/// Whether the pruned copy of `f` can be partially inlined: prologue
/// (entry) selected, an epilogue (`Ret`) present, and a kept path between
/// them (Section 3.3.3).
fn inlinable(m: &FuncMark, f: &Function) -> bool {
    if !m.is_selected(f.entry) {
        return false;
    }
    let reach = reachable_kept(m, f, &[f.entry]);
    reach
        .iter()
        .any(|&b| matches!(f.block(b).term, Terminator::Ret))
}

/// A call arc of the region call graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RegionCall {
    caller: FuncId,
    site: BlockId,
    callee: FuncId,
}

fn region_calls(program: &Program, region: &Region) -> Vec<RegionCall> {
    let mut calls = Vec::new();
    for (&fid, m) in &region.marks {
        if m.hot_blocks().next().is_none() {
            continue;
        }
        let f = program.func(fid);
        for b in f.block_ids().filter(|&b| m.is_selected(b)) {
            if let Terminator::Call { callee, .. } = f.block(b).term {
                let callee_hot = region
                    .mark(callee)
                    .map(|cm| cm.hot_blocks().next().is_some())
                    .unwrap_or(false);
                if callee_hot {
                    calls.push(RegionCall {
                        caller: fid,
                        site: b,
                        callee,
                    });
                }
            }
        }
    }
    calls
}

/// Root-function selection (Section 3.3.2).
fn find_roots(program: &Program, region: &Region, calls: &[RegionCall]) -> Vec<FuncId> {
    let hot_funcs: Vec<FuncId> = region.hot_funcs();
    let mut roots: BTreeSet<FuncId> = BTreeSet::new();

    for &f in &hot_funcs {
        let self_recursive = calls.iter().any(|c| c.caller == f && c.callee == f);
        let has_external_caller = calls.iter().any(|c| c.callee == f && c.caller != f);
        let m = region.mark(f).expect("hot function is marked");
        // (a) no callers in the region (self-calls are call-graph back
        //     edges and are ignored);
        // (b) cannot be inlined into any caller;
        // (c) self-recursive.
        if !has_external_caller || !inlinable(m, program.func(f)) || self_recursive {
            roots.insert(f);
        }
    }

    // Completeness fallback for caller cycles: a mutual-recursion SCC with
    // no external callers would otherwise have no root at all. Designate
    // its lowest-id member.
    let covered = |roots: &BTreeSet<FuncId>, f: FuncId| -> bool {
        // f is covered if reachable from a root through region call arcs.
        let mut work: Vec<FuncId> = roots.iter().copied().collect();
        let mut seen: BTreeSet<FuncId> = roots.clone();
        while let Some(g) = work.pop() {
            if g == f {
                return true;
            }
            for c in calls.iter().filter(|c| c.caller == g) {
                if seen.insert(c.callee) {
                    work.push(c.callee);
                }
            }
        }
        seen.contains(&f)
    };
    for &f in &hot_funcs {
        if !covered(&roots, f) {
            roots.insert(f);
        }
    }
    roots.into_iter().collect()
}

struct PkgBuilder<'p> {
    program: &'p Program,
    region: &'p Region,
    cfg: &'p PackConfig,
    liveness: HashMap<FuncId, Liveness>,
    blocks: Vec<Option<Block>>,
    meta: Vec<PkgBlockMeta>,
    branch_blocks: usize,
}

impl<'p> PkgBuilder<'p> {
    fn alloc(&mut self, meta: PkgBlockMeta) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        self.meta.push(meta);
        id
    }

    fn live_in(&mut self, cfgs: &mut CfgCache, target: CodeRef) -> Vec<vp_isa::Reg> {
        let program = self.program;
        let f = target.func;
        self.liveness.entry(f).or_insert_with(|| {
            let cfg = cfgs.get(program, f).clone();
            Liveness::new(program.func(f), &cfg)
        });
        self.liveness[&f].live_in(target.block).iter().collect()
    }

    /// Creates (or reuses) an exit block transferring back to `target` in
    /// original code.
    ///
    /// From the root context this is a plain jump. From an *inlined*
    /// context the original callee's eventual `Ret` needs the return
    /// addresses the elided calls would have pushed, so the exit becomes a
    /// chain of [`Terminator::CallThrough`] stubs: one per elided call
    /// site, outermost first, each pushing a trampoline that continues at
    /// that call site's original continuation.
    fn exit_block(
        &mut self,
        cfgs: &mut CfgCache,
        exits: &mut BTreeMap<CodeRef, BlockId>,
        ctx: &[CodeRef],
        target: CodeRef,
    ) -> BlockId {
        if let Some(&b) = exits.get(&target) {
            return b;
        }
        let live = self.live_in(cfgs, target);
        PKG_EXITS.incr();
        let head = self.alloc(PkgBlockMeta {
            origin: target,
            context: ctx.to_vec(),
            is_exit: true,
            is_stub: false,
        });

        // Allocate the chain after the head: stubs for sites 1..k and one
        // trampoline per site.
        let mut chain: Vec<BlockId> = Vec::new();
        for (i, site) in ctx.iter().enumerate() {
            let cont = match self.program.func(site.func).block(site.block).term {
                Terminator::Call { ret_to, .. } => CodeRef {
                    func: site.func,
                    block: ret_to,
                },
                ref t => unreachable!("context site {site} is not a call: {t:?}"),
            };
            // Trampoline: lands here when the (i-th innermost-remaining)
            // frame pops; continues in the original caller.
            let tr = self.alloc(PkgBlockMeta {
                origin: cont,
                context: ctx[..i].to_vec(),
                is_exit: true,
                is_stub: true,
            });
            self.blocks[tr.0 as usize] = Some(Block::empty(Terminator::Goto(cont)));
            chain.push(tr);
            if i + 1 < ctx.len() {
                let stub = self.alloc(PkgBlockMeta {
                    origin: target,
                    context: ctx.to_vec(),
                    is_exit: true,
                    is_stub: true,
                });
                chain.push(stub);
            }
        }

        // Wire the chain: head pushes cont(s1) and forwards; each stub
        // pushes the next continuation; the last transfer enters `target`.
        let term_for = |next: CodeRef, tr: BlockId| Terminator::CallThrough {
            target: next,
            ret_to: tr,
        };
        if ctx.is_empty() {
            self.blocks[head.0 as usize] = Some(Block {
                insts: vec![Inst::Consume { regs: live }],
                term: Terminator::Goto(target),
            });
        } else {
            // chain layout: [tr_1, stub_2, tr_2, stub_3, tr_3, ...]
            let mut carriers = vec![head];
            for i in 1..ctx.len() {
                carriers.push(chain[2 * i - 1]);
            }
            for (i, &carrier) in carriers.iter().enumerate() {
                let tr = chain[2 * i];
                let next = if i + 1 < carriers.len() {
                    CodeRef {
                        func: PKG_SELF,
                        block: carriers[i + 1],
                    }
                } else {
                    target
                };
                let insts = if i == 0 {
                    vec![Inst::Consume { regs: live.clone() }]
                } else {
                    vec![]
                };
                self.blocks[carrier.0 as usize] = Some(Block {
                    insts,
                    term: term_for(next, tr),
                });
            }
        }
        exits.insert(target, head);
        head
    }

    /// Instantiates the pruned copy of `fid` starting from `starts`.
    ///
    /// `ctx` is the inlining context (chain of original call sites);
    /// `ret_target` is where inlined returns continue (None for the root:
    /// returns stay returns). Returns the mapping from original to package
    /// block ids for this instance.
    fn instantiate(
        &mut self,
        cfgs: &mut CfgCache,
        fid: FuncId,
        starts: &[BlockId],
        ctx: Vec<CodeRef>,
        ret_target: Option<BlockId>,
    ) -> HashMap<BlockId, BlockId> {
        let program = self.program;
        let f = program.func(fid);
        let m = self
            .region
            .mark(fid)
            .expect("instantiated function is marked");
        let kept = reachable_kept(m, f, starts);
        PKG_COPIED.add(kept.len() as u64);
        PKG_PRUNED.add((f.blocks.len() - kept.len()) as u64);

        // Phase 1: allocate ids.
        let mut map: HashMap<BlockId, BlockId> = HashMap::new();
        for &b in &kept {
            let id = self.alloc(PkgBlockMeta {
                origin: CodeRef {
                    func: fid,
                    block: b,
                },
                context: ctx.clone(),
                is_exit: false,
                is_stub: false,
            });
            map.insert(b, id);
        }
        let mut exits: BTreeMap<CodeRef, BlockId> = BTreeMap::new();

        // Phase 2: copy bodies and rewrite terminators.
        for &b in &kept {
            let orig = f.block(b);
            let pkg_id = map[&b];
            let pkg_ref = |map: &HashMap<BlockId, BlockId>, t: BlockId| CodeRef {
                func: PKG_SELF,
                block: map[&t],
            };
            let term = match &orig.term {
                Terminator::Goto(t) => {
                    debug_assert_eq!(t.func, fid);
                    if kept.contains(&t.block) && arc_kept(m, f, ArcKey::new(b, EdgeKind::Goto)) {
                        Terminator::Goto(pkg_ref(&map, t.block))
                    } else {
                        let e = self.exit_block(cfgs, &mut exits, &ctx, *t);
                        Terminator::Goto(CodeRef {
                            func: PKG_SELF,
                            block: e,
                        })
                    }
                }
                Terminator::Br {
                    cond,
                    rs1,
                    rs2,
                    taken,
                    not_taken,
                } => {
                    self.branch_blocks += 1;
                    let resolve = |this: &mut Self,
                                   cfgs: &mut CfgCache,
                                   exits: &mut BTreeMap<CodeRef, BlockId>,
                                   t: &CodeRef,
                                   kind: EdgeKind| {
                        if kept.contains(&t.block) && arc_kept(m, f, ArcKey::new(b, kind)) {
                            pkg_ref(&map, t.block)
                        } else {
                            let e = this.exit_block(cfgs, exits, &ctx, *t);
                            CodeRef {
                                func: PKG_SELF,
                                block: e,
                            }
                        }
                    };
                    let tk = resolve(self, cfgs, &mut exits, taken, EdgeKind::Taken);
                    let nt = resolve(self, cfgs, &mut exits, not_taken, EdgeKind::NotTaken);
                    Terminator::Br {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        taken: tk,
                        not_taken: nt,
                    }
                }
                Terminator::Call { callee, ret_to } => {
                    let cont = if kept.contains(ret_to)
                        && arc_kept(m, f, ArcKey::new(b, EdgeKind::CallCont))
                    {
                        map[ret_to]
                    } else {
                        self.exit_block(
                            cfgs,
                            &mut exits,
                            &ctx,
                            CodeRef {
                                func: fid,
                                block: *ret_to,
                            },
                        )
                    };
                    let site = CodeRef {
                        func: fid,
                        block: b,
                    };
                    if self.should_inline(*callee, &ctx) {
                        let mut inner_ctx = ctx.clone();
                        inner_ctx.push(site);
                        PKG_INLINES.incr();
                        vp_trace::event(
                            "core.pkg.inline",
                            &[
                                ("callee", vp_trace::Value::from(callee.0 as u64)),
                                ("depth", vp_trace::Value::from(inner_ctx.len())),
                            ],
                        );
                        let inner_map = self.instantiate(
                            cfgs,
                            *callee,
                            &[program.func(*callee).entry],
                            inner_ctx,
                            Some(cont),
                        );
                        let entry = inner_map[&program.func(*callee).entry];
                        Terminator::Goto(CodeRef {
                            func: PKG_SELF,
                            block: entry,
                        })
                    } else {
                        // Not inlined: call the original function (whose
                        // launch point may itself redirect to a package).
                        Terminator::Call {
                            callee: *callee,
                            ret_to: cont,
                        }
                    }
                }
                Terminator::Ret => match ret_target {
                    // Inlined return: continue at the caller's
                    // continuation inside the package.
                    Some(cont) => Terminator::Goto(CodeRef {
                        func: PKG_SELF,
                        block: cont,
                    }),
                    None => Terminator::Ret,
                },
                Terminator::Halt => Terminator::Halt,
                Terminator::CallThrough { .. } => {
                    unreachable!("original code never contains CallThrough")
                }
            };
            self.blocks[pkg_id.0 as usize] = Some(Block {
                insts: orig.insts.clone(),
                term,
            });
        }
        map
    }

    /// Inlining admission: callee must be in the region, structurally
    /// inlinable, and not over-represented in the context chain
    /// (Section 3.3.3's self-recursion rule generalized to cycles).
    fn should_inline(&self, callee: FuncId, ctx: &[CodeRef]) -> bool {
        let Some(cm) = self.region.mark(callee) else {
            return false;
        };
        if cm.hot_blocks().next().is_none() || !inlinable(cm, self.program.func(callee)) {
            return false;
        }
        let occurrences = ctx
            .iter()
            .filter(
                |site| match self.program.func(site.func).block(site.block).term {
                    Terminator::Call { callee: c, .. } => c == callee,
                    _ => false,
                },
            )
            .count();
        occurrences <= self.cfg.max_inline_depth_per_func
    }
}

/// Builds every package of one region: one package per root function
/// (Section 3.3).
pub fn build_packages(
    program: &Program,
    cfgs: &mut CfgCache,
    region: &Region,
    cfg: &PackConfig,
) -> Vec<Package> {
    let calls = region_calls(program, region);
    let roots = find_roots(program, region, &calls);
    let mut packages = Vec::new();

    for root in roots {
        let m = region.mark(root).expect("root is marked");
        let f = program.func(root);
        let root_cfg = cfgs.get(program, root).clone();
        let entries = entry_blocks(m, f, &root_cfg);
        if entries.is_empty() {
            continue;
        }
        let mut b = PkgBuilder {
            program,
            region,
            cfg,
            liveness: HashMap::new(),
            blocks: Vec::new(),
            meta: Vec::new(),
            branch_blocks: 0,
        };
        let map = b.instantiate(cfgs, root, &entries, Vec::new(), None);
        if map.is_empty() {
            continue;
        }
        let entry_pairs: Vec<(BlockId, CodeRef)> = entries
            .iter()
            .filter_map(|e| {
                map.get(e).map(|&pb| {
                    (
                        pb,
                        CodeRef {
                            func: root,
                            block: *e,
                        },
                    )
                })
            })
            .collect();
        PKG_BUILT.incr();
        packages.push(Package {
            phase: region.phase,
            root,
            name: format!("pkg_p{}_{}", region.phase, f.name),
            blocks: b
                .blocks
                .into_iter()
                .map(|ob| ob.expect("block body filled"))
                .collect(),
            meta: b.meta,
            entries: entry_pairs,
            branch_blocks: b.branch_blocks,
        });
    }
    packages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::identify_region;
    use std::collections::BTreeMap as Map;
    use vp_hsd::{Phase, PhaseBranch};
    use vp_isa::{Cond, Reg, Src};
    use vp_program::{Layout, ProgramBuilder};

    /// main: loop calling helper; helper has a hot path and a cold path.
    fn call_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        pb.define(helper, |f| {
            let c = f.cond(Cond::Eq, Reg::ARG0, Src::Imm(777));
            f.if_else(
                c,
                |f| {
                    // cold path
                    f.li(Reg::int(30), 1);
                    f.ret();
                },
                |f| {
                    f.addi(Reg::ARG0, Reg::ARG0, 1);
                    f.ret();
                },
            );
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(100)),
                |f| {
                    f.mov(Reg::ARG0, i);
                    f.call(helper);
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.set_entry(main);
        pb.build()
    }

    fn all_branch_phase(p: &Program, layout: &Layout, profiles: &[(FuncId, u64, u64)]) -> Phase {
        // Profile every conditional branch of the listed functions with the
        // given (exec, taken) counts.
        let mut branches = Map::new();
        for &(fid, exec, taken) in profiles {
            for (bid, b) in p.func(fid).blocks_iter() {
                if b.term.is_cond_branch() {
                    let addr = layout.branch_addr(CodeRef {
                        func: fid,
                        block: bid,
                    });
                    branches.insert(addr, PhaseBranch::once(exec, taken));
                }
            }
        }
        Phase {
            id: 0,
            branches,
            first_detected_at: 0,
            detections: 1,
        }
    }

    fn build_for(p: &Program, phase: &Phase, cfg: &PackConfig) -> Vec<Package> {
        let layout = Layout::natural(p);
        let mut cfgs = CfgCache::new();
        let region = identify_region(p, &layout, &mut cfgs, phase, cfg);
        build_packages(p, &mut cfgs, &region, cfg)
    }

    #[test]
    fn hot_callee_is_inlined_into_root_package() {
        let p = call_program();
        let layout = Layout::natural(&p);
        let main = FuncId(1);
        let helper = FuncId(0);
        // main's loop branch taken 99%; helper's cold check not-taken 99%.
        let phase = all_branch_phase(&p, &layout, &[(main, 200, 198), (helper, 200, 2)]);
        let pkgs = build_for(&p, &phase, &PackConfig::default());
        assert_eq!(pkgs.len(), 1, "single root: main");
        let pkg = &pkgs[0];
        assert_eq!(pkg.root, main);
        // Helper blocks appear with a non-empty context.
        assert!(
            pkg.meta
                .iter()
                .any(|m| m.origin.func == helper && !m.context.is_empty()),
            "helper must be partially inlined"
        );
        // The cold path of helper must NOT be copied.
        let cold_block = p
            .func(helper)
            .blocks_iter()
            .find(|(_, b)| {
                b.insts
                    .iter()
                    .any(|i| matches!(i, Inst::Li { rd, imm: 1 } if *rd == Reg::int(30)))
            })
            .map(|(id, _)| id)
            .unwrap();
        assert!(
            !pkg.meta.iter().any(|m| !m.is_exit
                && m.origin
                    == CodeRef {
                        func: helper,
                        block: cold_block
                    }),
            "cold path must be pruned"
        );
        // Exit blocks exist and carry dummy consumers.
        let (exit_id, _) = pkg.exits().next().expect("pruned paths create exits");
        assert!(matches!(
            pkg.blocks[exit_id.0 as usize].insts[0],
            Inst::Consume { .. }
        ));
    }

    #[test]
    fn inlined_returns_become_jumps() {
        let p = call_program();
        let layout = Layout::natural(&p);
        let phase = all_branch_phase(&p, &layout, &[(FuncId(1), 200, 198), (FuncId(0), 200, 2)]);
        let pkgs = build_for(&p, &phase, &PackConfig::default());
        let pkg = &pkgs[0];
        // No Ret terminator may remain for inlined helper blocks.
        for (i, block) in pkg.blocks.iter().enumerate() {
            if pkg.meta[i].origin.func == FuncId(0) && !pkg.meta[i].is_exit {
                assert!(
                    !matches!(block.term, Terminator::Ret),
                    "inlined return must be rewritten to a jump"
                );
            }
        }
        // And no call to helper remains inside the package.
        assert!(!pkg
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Call { callee, .. } if callee == FuncId(0))));
    }

    #[test]
    fn self_recursive_function_is_its_own_root() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec");
        pb.define(rec, |f| {
            let c = f.cond(Cond::Lt, Reg::ARG0, Src::Imm(1));
            f.if_else(
                c,
                |f| f.ret(),
                |f| {
                    f.addi(Reg::ARG0, Reg::ARG0, -1);
                    f.call(rec);
                    f.ret();
                },
            );
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(50)),
                |f| {
                    f.li(Reg::ARG0, 20);
                    f.call(rec);
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let layout = Layout::natural(&p);
        let phase = all_branch_phase(&p, &layout, &[(main, 100, 98), (rec, 2000, 100)]);
        let pkgs = build_for(&p, &phase, &PackConfig::default());
        let roots: Vec<FuncId> = pkgs.iter().map(|p| p.root).collect();
        assert!(
            roots.contains(&rec),
            "self-recursive function must be a root: {roots:?}"
        );
        // The rec package inlines rec into itself exactly once: some block
        // has context depth 1 and a recursive call remains.
        let rec_pkg = pkgs.iter().find(|p| p.root == rec).unwrap();
        assert!(rec_pkg.meta.iter().any(|m| m.context.len() == 1));
        assert!(rec_pkg
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Call { callee, .. } if callee == rec)));
    }

    #[test]
    fn entries_point_at_root_entry_blocks() {
        let p = call_program();
        let layout = Layout::natural(&p);
        let phase = all_branch_phase(&p, &layout, &[(FuncId(1), 200, 198), (FuncId(0), 200, 2)]);
        let pkgs = build_for(&p, &phase, &PackConfig::default());
        let pkg = &pkgs[0];
        assert!(!pkg.entries.is_empty());
        for (pb_id, orig) in &pkg.entries {
            assert_eq!(pkg.meta[pb_id.0 as usize].origin, *orig);
            assert_eq!(orig.func, pkg.root);
        }
    }

    #[test]
    fn packages_count_their_branches() {
        let p = call_program();
        let layout = Layout::natural(&p);
        let phase = all_branch_phase(&p, &layout, &[(FuncId(1), 200, 198), (FuncId(0), 200, 2)]);
        let pkgs = build_for(&p, &phase, &PackConfig::default());
        let pkg = &pkgs[0];
        let counted = pkg
            .blocks
            .iter()
            .filter(|b| b.term.is_cond_branch())
            .count();
        assert_eq!(pkg.branch_blocks, counted);
        assert!(counted >= 1);
    }
}
