//! # vp-core
//!
//! The paper's primary contribution: Vacuum Packing region formation and
//! package extraction.
//!
//! Given a program and the phases detected by the Hot Spot Detector
//! (`vp-hsd`), this crate:
//!
//! 1. **identifies** the hot region of each phase — temperature marking,
//!    the Figure-4 inference fixpoint, heuristic growth ([`ident`],
//!    Sections 3.2.1–3.2.3);
//! 2. **constructs packages** — pruning cold code out of per-phase function
//!    copies, inserting exit blocks with dummy consumers, finding root
//!    functions and entry blocks, and partially inlining hot callees
//!    ([`package`], Sections 3.3.1–3.3.3);
//! 3. **links packages** that share launch points and ranks orderings with
//!    the accumulator formula ([`linking`], Section 3.3.4);
//! 4. **rewrites the binary** — appends package functions, patches launch
//!    points, and installs inter-package links ([`rewrite()`]).
//!
//! The end-to-end pipeline is [`pack`]; the two evaluation axes of the
//! paper's Figures 8 and 10 (`inference`, `linking`) are switches on
//! [`PackConfig`].

#![warn(missing_docs)]

pub mod ident;
pub mod linking;
pub mod package;
pub mod region;
pub mod rewrite;

pub use ident::{identify_region, CfgCache};
pub use linking::{rank_ordering, LinkPlan};
pub use package::{build_packages, Package, PkgBlockMeta};
pub use region::{ArcKey, FuncMark, Region, Temp};
pub use rewrite::{rewrite, PackOutput, PackageInfo};

use vp_hsd::Phase;
use vp_program::{Layout, Program};

/// Configuration of the Vacuum Packing pipeline.
///
/// Defaults follow the paper: 25% hot-arc fraction, the HSD candidate
/// threshold of 16 as the hot-arc execution threshold, `MAX_BLOCKS` = 1,
/// and both inference and linking enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackConfig {
    /// Enable temperature inference for blocks ending in unprofiled
    /// conditional branches (Figure 8/10's first configuration axis).
    pub inference: bool,
    /// Enable inter-package linking (Figure 8/10's second axis).
    pub linking: bool,
    /// Minimum fraction of a branch's flow for a direction to be Hot
    /// (Section 3.2.1: 25%).
    pub hot_arc_fraction: f64,
    /// Absolute arc weight above which a direction is Hot regardless of
    /// fraction (Section 3.2.1: the HSD's hot-spot branch execution
    /// threshold).
    pub hot_arc_threshold: u64,
    /// `MAX_BLOCKS`: predecessor blocks heuristic growth may add per entry
    /// (Section 3.2.3: 1).
    pub max_growth_blocks: usize,
    /// Maximum number of packages per root for which link orderings are
    /// ranked exhaustively; beyond this a greedy order is used.
    pub max_exhaustive_orderings: usize,
    /// Per-package bound on how many times one function may appear in an
    /// inlining context chain (prevents unbounded mutual-recursion
    /// inlining; the paper's self-recursion rule corresponds to 1).
    pub max_inline_depth_per_func: usize,
}

impl Default for PackConfig {
    fn default() -> PackConfig {
        PackConfig {
            inference: true,
            linking: true,
            hot_arc_fraction: 0.25,
            hot_arc_threshold: 16,
            max_growth_blocks: 1,
            max_exhaustive_orderings: 7,
            max_inline_depth_per_func: 1,
        }
    }
}

impl PackConfig {
    /// Stable structural fingerprint of every knob, for content-addressed
    /// result caching. Any field change — including float thresholds —
    /// produces a different fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = vp_isa::Fnv::new();
        h.write_str("PackConfig");
        h.write_bool(self.inference);
        h.write_bool(self.linking);
        h.write_f64(self.hot_arc_fraction);
        h.write_u64(self.hot_arc_threshold);
        h.write_usize(self.max_growth_blocks);
        h.write_usize(self.max_exhaustive_orderings);
        h.write_usize(self.max_inline_depth_per_func);
        h.finish()
    }

    /// The four evaluation configurations of Figures 8 and 10, in the
    /// paper's bar order: (no inference, no linking), (no inference,
    /// linking), (inference, no linking), (inference, linking).
    pub fn evaluation_matrix() -> [PackConfig; 4] {
        let base = PackConfig::default();
        [
            PackConfig {
                inference: false,
                linking: false,
                ..base
            },
            PackConfig {
                inference: false,
                linking: true,
                ..base
            },
            PackConfig {
                inference: true,
                linking: false,
                ..base
            },
            PackConfig {
                inference: true,
                linking: true,
                ..base
            },
        ]
    }
}

/// Runs the full Vacuum Packing pipeline: region identification for every
/// phase, package construction, linking, and binary rewriting.
///
/// `layout` must be the layout of `program` (it maps the BBB's branch
/// addresses back to blocks).
pub fn pack(program: &Program, layout: &Layout, phases: &[Phase], cfg: &PackConfig) -> PackOutput {
    let mut cfgs = CfgCache::new();
    let regions: Vec<Region> = {
        let _s = vp_trace::span("core.identify");
        phases
            .iter()
            .map(|ph| identify_region(program, layout, &mut cfgs, ph, cfg))
            .collect()
    };
    let mut packages = Vec::new();
    {
        let _s = vp_trace::span("core.package");
        for region in &regions {
            packages.extend(build_packages(program, &mut cfgs, region, cfg));
        }
    }
    let _s = vp_trace::span("core.rewrite");
    rewrite(program, packages, regions, cfg)
}
