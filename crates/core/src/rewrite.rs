//! Step 3c: binary rewriting.
//!
//! Installs the constructed packages into a copy of the original program:
//! package bodies become new functions appended after the original code
//! (the original program is "left largely untouched and off to the side",
//! as in Hot Cold Optimization), launch points in original code are patched
//! to enter packages, and inter-package links are wired according to the
//! [`crate::linking`] plan.

use crate::linking::plan_links;
use crate::package::{Package, PkgBlockMeta};
use crate::region::Region;
use crate::PackConfig;
use std::collections::BTreeSet;
use vp_isa::{BlockId, CodeRef, FuncId};
use vp_program::{FuncKind, Function, Program, Terminator};
use vp_trace::Counter;

/// Launch points patched into original code.
static LAUNCH_POINTS: Counter = Counter::new("core.rewrite.launch_points");
/// Package functions installed into the rewritten program.
static PKGS_INSTALLED: Counter = Counter::new("core.rewrite.packages_installed");

/// Summary of one installed package.
#[derive(Debug, Clone)]
pub struct PackageInfo {
    /// Phase the package serves.
    pub phase: usize,
    /// Root function it was grown from.
    pub root: FuncId,
    /// Id of the installed package function.
    pub func: FuncId,
    /// Static instructions in the package body.
    pub static_insts: u64,
    /// Original locations of the package's entry blocks.
    pub entries: Vec<CodeRef>,
    /// Package entry blocks paired with their original locations.
    pub entry_blocks: Vec<(BlockId, CodeRef)>,
    /// Per-block provenance, parallel to the installed function's blocks
    /// (used by the optimizer to look up phase profile data).
    pub meta: Vec<PkgBlockMeta>,
    /// Links entering this package.
    pub links_in: usize,
    /// Links leaving this package.
    pub links_out: usize,
}

/// Result of the full Vacuum Packing pipeline.
#[derive(Debug, Clone)]
pub struct PackOutput {
    /// The rewritten program: original functions (with patched launch
    /// points) plus one function per package.
    pub program: Program,
    /// The per-phase regions that produced the packages.
    pub regions: Vec<Region>,
    /// Installed packages.
    pub packages: Vec<PackageInfo>,
    /// Static instructions of the original program (terminators at unit
    /// cost).
    pub original_insts: u64,
    /// Static instructions across all package bodies.
    pub package_insts: u64,
    /// Static instructions of distinct original blocks selected into at
    /// least one package (Table 3's "% static inst selected" numerator).
    pub selected_insts: u64,
    /// Number of launch points patched in original code.
    pub launch_points: usize,
}

impl PackOutput {
    /// Code expansion as a fraction of the original static size
    /// (Table 3's "% increase in size").
    pub fn expansion(&self) -> f64 {
        self.package_insts as f64 / self.original_insts.max(1) as f64
    }

    /// FNV-1a fingerprint of the installed package set: which packages
    /// exist, where they were installed, and the provenance of every
    /// package block. Distinguishes packed variants of one workload in
    /// the trace cache (`vp_exec::TraceKey::packed`).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.packages.len() as u64);
        for pi in &self.packages {
            fold(pi.phase as u64);
            fold(u64::from(pi.root.0));
            fold(u64::from(pi.func.0));
            fold(pi.static_insts);
            fold(pi.links_in as u64);
            fold(pi.links_out as u64);
            for (b, origin) in &pi.entry_blocks {
                fold(u64::from(b.0));
                fold(u64::from(origin.func.0) << 32 | u64::from(origin.block.0));
            }
            for m in &pi.meta {
                fold(u64::from(m.origin.func.0) << 32 | u64::from(m.origin.block.0));
                fold(u64::from(m.is_exit) << 1 | u64::from(m.is_stub));
                fold(m.context.len() as u64);
            }
        }
        fold(self.launch_points as u64);
        h
    }

    /// Builds the [`vp_exec::IdentityMap`] that folds this rewritten
    /// program's package locations back to original-block identities —
    /// the input differential replay (`vp_exec::diff`) needs to align a
    /// packed capture against the original one.
    pub fn identity_map(&self) -> vp_exec::IdentityMap {
        let mut map = vp_exec::IdentityMap::new();
        for (i, pi) in self.packages.iter().enumerate() {
            let blocks = pi
                .meta
                .iter()
                .map(|m| vp_exec::BlockIdentity {
                    origin: m.origin,
                    package: i as u32,
                    phase: pi.phase as u32,
                    is_exit: m.is_exit,
                    is_stub: m.is_stub,
                })
                .collect();
            map.insert_package(pi.func, blocks);
        }
        map
    }

    /// Fraction of original static instructions selected into at least one
    /// package (Table 3's second column).
    pub fn selected_fraction(&self) -> f64 {
        self.selected_insts as f64 / self.original_insts.max(1) as f64
    }

    /// Average replication factor of selected instructions (the paper
    /// reports ≈2.6).
    pub fn replication_factor(&self) -> f64 {
        self.package_insts as f64 / self.selected_insts.max(1) as f64
    }
}

/// Installs `packages` into a copy of `program`.
///
/// # Panics
///
/// Panics (debug assertion) if the rewritten program fails validation —
/// that would be a pipeline bug, not a user error.
pub fn rewrite(
    program: &Program,
    packages: Vec<Package>,
    regions: Vec<Region>,
    cfg: &PackConfig,
) -> PackOutput {
    let mut out = program.clone();
    let plan = plan_links(&packages, cfg);

    // Install package functions, remapping PKG_SELF to the assigned id.
    let mut pkg_fids = Vec::with_capacity(packages.len());
    for pkg in &packages {
        let mut f = Function::new(pkg.name.clone());
        f.kind = FuncKind::Package { phase: pkg.phase };
        f.blocks = pkg.blocks.clone();
        // The function entry used by patched calls: the copy of the root's
        // real entry block when present, else the first package entry.
        let root_entry = CodeRef {
            func: pkg.root,
            block: program.func(pkg.root).entry,
        };
        f.entry = pkg
            .entries
            .iter()
            .find(|(_, origin)| *origin == root_entry)
            .or_else(|| pkg.entries.first())
            .map(|(b, _)| *b)
            .unwrap_or(BlockId(0));
        let fid = out.push_func(f);
        pkg_fids.push(fid);
        remap_self(&mut out, fid);
    }

    // Wire inter-package links: the exit's Goto is retargeted at the
    // sibling's hot block; the Consume instructions remain, still
    // describing the registers live across the transition.
    let mut links_in = vec![0usize; packages.len()];
    let mut links_out = vec![0usize; packages.len()];
    for l in &plan.links {
        let from_f = pkg_fids[l.from_pkg];
        let target = CodeRef {
            func: pkg_fids[l.to_pkg],
            block: l.to_block,
        };
        out.func_mut(from_f).block_mut(l.from_block).term = Terminator::Goto(target);
        links_in[l.to_pkg] += 1;
        links_out[l.from_pkg] += 1;
    }

    // Patch launch points.
    let mut launch_points = 0;
    for (&origin, &owner) in &plan.entry_owner {
        let pkg_fid = pkg_fids[owner];
        let pkg_block = packages[owner]
            .entries
            .iter()
            .find(|(_, o)| *o == origin)
            .map(|(b, _)| *b)
            .expect("owner contains the entry");
        if origin.block == program.func(origin.func).entry {
            // Function-entry launch: redirect every call to the root.
            for f in &mut out.funcs {
                if pkg_fids.contains(&f.id) && f.id != pkg_fid {
                    // Package-internal recursive calls also re-enter the
                    // packaged code.
                }
                for block in &mut f.blocks {
                    if let Terminator::Call { callee, .. } = &mut block.term {
                        if *callee == origin.func {
                            *callee = pkg_fid;
                            launch_points += 1;
                        }
                    }
                }
            }
        } else {
            // Mid-function launch: retarget intra-function transfers in the
            // original function.
            let target = CodeRef {
                func: pkg_fid,
                block: pkg_block,
            };
            let f = out.func_mut(origin.func);
            for block in &mut f.blocks {
                match &mut block.term {
                    Terminator::Goto(t) if *t == origin => {
                        *t = target;
                        launch_points += 1;
                    }
                    Terminator::Br {
                        taken, not_taken, ..
                    } => {
                        if *taken == origin {
                            *taken = target;
                            launch_points += 1;
                        }
                        if *not_taken == origin {
                            *not_taken = target;
                            launch_points += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Statistics.
    let original_insts = program.static_insts();
    let package_insts: u64 = packages.iter().map(|p| p.static_insts()).sum();
    let selected: BTreeSet<CodeRef> = packages
        .iter()
        .flat_map(|p| p.meta.iter().filter(|m| !m.is_exit).map(|m| m.origin))
        .collect();
    let selected_insts: u64 = selected
        .iter()
        .map(|r| program.block(*r).static_insts())
        .sum();

    let infos: Vec<PackageInfo> = packages
        .iter()
        .enumerate()
        .map(|(i, p)| PackageInfo {
            phase: p.phase,
            root: p.root,
            func: pkg_fids[i],
            static_insts: p.static_insts(),
            entries: p.entries.iter().map(|(_, o)| *o).collect(),
            entry_blocks: p.entries.clone(),
            meta: p.meta.clone(),
            links_in: links_in[i],
            links_out: links_out[i],
        })
        .collect();

    debug_assert_eq!(out.validate(), Ok(()), "rewritten program must stay valid");

    LAUNCH_POINTS.add(launch_points as u64);
    PKGS_INSTALLED.add(infos.len() as u64);

    PackOutput {
        program: out,
        regions,
        packages: infos,
        original_insts,
        package_insts,
        selected_insts,
        launch_points,
    }
}

/// Replaces the PKG_SELF sentinel with the installed function id inside
/// function `fid`.
fn remap_self(p: &mut Program, fid: FuncId) {
    use crate::package::PKG_SELF;
    let f = p.func_mut(fid);
    for block in &mut f.blocks {
        match &mut block.term {
            Terminator::Goto(t) if t.func == PKG_SELF => {
                t.func = fid;
            }
            Terminator::Br {
                taken, not_taken, ..
            } => {
                if taken.func == PKG_SELF {
                    taken.func = fid;
                }
                if not_taken.func == PKG_SELF {
                    not_taken.func = fid;
                }
            }
            Terminator::CallThrough { target, .. } if target.func == PKG_SELF => {
                target.func = fid;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::{identify_region, CfgCache};
    use crate::package::build_packages;
    use std::collections::BTreeMap;
    use vp_hsd::{Phase, PhaseBranch};
    use vp_isa::{Cond, Reg, Src};
    use vp_program::{Layout, ProgramBuilder};

    fn hot_loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        pb.define(helper, |f| {
            f.addi(Reg::ARG0, Reg::ARG0, 1);
            f.ret();
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(100)),
                |f| {
                    f.mov(Reg::ARG0, i);
                    f.call(helper);
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.set_entry(main);
        pb.build()
    }

    fn phase_for(p: &Program, layout: &Layout) -> Phase {
        let mut branches = BTreeMap::new();
        for f in &p.funcs {
            for (bid, b) in f.blocks_iter() {
                if b.term.is_cond_branch() {
                    let addr = layout.branch_addr(CodeRef {
                        func: f.id,
                        block: bid,
                    });
                    branches.insert(addr, PhaseBranch::once(100, 99));
                }
            }
        }
        Phase {
            id: 0,
            branches,
            first_detected_at: 0,
            detections: 1,
        }
    }

    fn pack_it(p: &Program) -> PackOutput {
        let layout = Layout::natural(p);
        let phase = phase_for(p, &layout);
        let cfg = PackConfig::default();
        let mut cfgs = CfgCache::new();
        let region = identify_region(p, &layout, &mut cfgs, &phase, &cfg);
        let pkgs = build_packages(p, &mut cfgs, &region, &cfg);
        rewrite(p, pkgs, vec![region], &cfg)
    }

    #[test]
    fn rewritten_program_validates_and_grows() {
        let p = hot_loop_program();
        let out = pack_it(&p);
        assert!(out.program.validate().is_ok());
        assert!(out.program.funcs.len() > p.funcs.len());
        assert!(out.package_insts > 0);
        assert!(out.selected_insts > 0);
        assert!(out.expansion() > 0.0);
        assert!(out.replication_factor() >= 1.0);
    }

    #[test]
    fn no_pkg_self_sentinel_survives() {
        use crate::package::PKG_SELF;
        let p = hot_loop_program();
        let out = pack_it(&p);
        for f in &out.program.funcs {
            for b in &f.blocks {
                for t in b.term.code_targets() {
                    assert_ne!(t.func, PKG_SELF);
                }
            }
        }
    }

    #[test]
    fn launch_points_patched() {
        let p = hot_loop_program();
        let out = pack_it(&p);
        assert!(out.launch_points > 0, "some launch point must be patched");
        // Some original-code terminator must now target a package function.
        let pkg_ids: Vec<FuncId> = out.packages.iter().map(|pi| pi.func).collect();
        let mut found = false;
        for f in out.program.funcs.iter().filter(|f| !f.is_package()) {
            for b in &f.blocks {
                match &b.term {
                    Terminator::Call { callee, .. } if pkg_ids.contains(callee) => found = true,
                    Terminator::Goto(t) if pkg_ids.contains(&t.func) => found = true,
                    Terminator::Br {
                        taken, not_taken, ..
                    } if pkg_ids.contains(&taken.func) || pkg_ids.contains(&not_taken.func) => {
                        found = true
                    }
                    _ => {}
                }
            }
        }
        assert!(found, "original code must transfer into a package");
    }

    #[test]
    fn package_functions_are_marked() {
        let p = hot_loop_program();
        let out = pack_it(&p);
        for pi in &out.packages {
            assert!(out.program.func(pi.func).is_package());
            assert!(pi.static_insts > 0);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let p = hot_loop_program();
        let a = pack_it(&p);
        let b = pack_it(&p);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same pack, same print");
        assert_ne!(a.fingerprint(), 0);

        // Dropping a package changes the fingerprint.
        let mut c = pack_it(&p);
        c.packages.pop();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn identity_map_covers_every_package_block() {
        let p = hot_loop_program();
        let out = pack_it(&p);
        let map = out.identity_map();
        assert_eq!(map.packages(), out.packages.len());
        for pi in &out.packages {
            for (b, m) in pi.meta.iter().enumerate() {
                let id = map
                    .lookup(CodeRef {
                        func: pi.func,
                        block: vp_isa::BlockId(b as u32),
                    })
                    .expect("every package block has an identity");
                assert_eq!(id.origin, m.origin);
                assert_eq!(id.is_exit, m.is_exit);
                assert_eq!(id.is_stub, m.is_stub);
            }
        }
        // Original code has no entry: it maps to itself.
        assert!(map
            .lookup(CodeRef {
                func: p.entry,
                block: p.func(p.entry).entry
            })
            .is_none());
    }
}
