//! Step 2: region identification (paper Section 3.2).
//!
//! Maps one detected phase's branch profile onto the program, assigns
//! initial block/arc temperatures (Section 3.2.1), runs the temperature
//! inference fixpoint of Figure 4 (Section 3.2.2), and performs heuristic
//! growth (Section 3.2.3).

use crate::region::{ArcKey, FuncMark, Region, Temp};
use crate::PackConfig;
use std::collections::HashMap;
use vp_hsd::Phase;
use vp_isa::{BlockId, FuncId};
use vp_program::{Cfg, EdgeKind, Layout, Program, Terminator};
use vp_trace::Counter;

/// Iterations of the Figure 4 inference fixpoint.
static INFER_ITERATIONS: Counter = Counter::new("core.infer.iterations");
/// Statement 3 fires: block inferred Cold from all-cold arcs.
static INFER_STMT3: Counter = Counter::new("core.infer.stmt3");
/// Statement 4 fires: block inferred Hot from a hot arc.
static INFER_STMT4: Counter = Counter::new("core.infer.stmt4");
/// Statement 6 fires: arc of a Cold block marked Cold.
static INFER_STMT6: Counter = Counter::new("core.infer.stmt6");
/// Statement 7 fires: last Unknown arc of a Hot block marked Hot.
static INFER_STMT7: Counter = Counter::new("core.infer.stmt7");
/// Statements 8-9 fires: hot call marked the callee prologue Hot.
static INFER_STMT8: Counter = Counter::new("core.infer.stmt8");
/// Unknown arcs between Hot blocks included by growth.
static GROW_ARCS: Counter = Counter::new("core.grow.arc_inclusions");
/// Blocks added by budget-limited predecessor growth.
static GROW_BLOCKS: Counter = Counter::new("core.grow.blocks_added");
/// Blocks Hot after region identification.
static REGION_HOT: Counter = Counter::new("core.region.blocks_hot");
/// Blocks Cold after region identification.
static REGION_COLD: Counter = Counter::new("core.region.blocks_cold");
/// Blocks still Unknown after region identification.
static REGION_UNKNOWN: Counter = Counter::new("core.region.blocks_unknown");

/// Lazily-built per-function CFG cache shared by the pipeline steps.
#[derive(Debug, Default)]
pub struct CfgCache {
    map: HashMap<FuncId, Cfg>,
}

impl CfgCache {
    /// Creates an empty cache.
    pub fn new() -> CfgCache {
        CfgCache::default()
    }

    /// The CFG of `f`, built on first use.
    pub fn get(&mut self, program: &Program, f: FuncId) -> &Cfg {
        self.map
            .entry(f)
            .or_insert_with(|| Cfg::new(program.func(f)))
    }
}

/// Identifies the hot region for one phase.
///
/// The returned [`Region`] marks every function touched by the phase with
/// block and arc temperatures; Hot blocks are the extraction candidates.
pub fn identify_region(
    program: &Program,
    layout: &Layout,
    cfgs: &mut CfgCache,
    phase: &Phase,
    cfg: &PackConfig,
) -> Region {
    let mut region = Region::new(phase.id);
    init_marking(program, layout, phase, cfg, &mut region);
    infer(program, cfgs, cfg, &mut region);
    grow(program, cfgs, cfg, &mut region);
    if vp_trace::enabled() {
        let (mut hot, mut cold, mut unknown) = (0u64, 0u64, 0u64);
        for (&fid, m) in &region.marks {
            for b in program.func(fid).block_ids() {
                match m.block_temp(b) {
                    Temp::Hot => hot += 1,
                    Temp::Cold => cold += 1,
                    Temp::Unknown => unknown += 1,
                }
            }
        }
        REGION_HOT.add(hot);
        REGION_COLD.add(cold);
        REGION_UNKNOWN.add(unknown);
    }
    region
}

/// Section 3.2.1: seed temperatures and weights from the BBB profile.
fn init_marking(
    program: &Program,
    layout: &Layout,
    phase: &Phase,
    cfg: &PackConfig,
    region: &mut Region,
) {
    for (&addr, pb) in &phase.branches {
        let Some(bref) = layout.branch_at(addr) else {
            continue;
        };
        let nblocks = program.func(bref.func).blocks.len();
        let m = region.mark_mut(bref.func, nblocks);
        m.set_block_temp(bref.block, Temp::Hot);
        m.set_block_weight(bref.block, pb.avg_exec());
        m.set_taken_prob(bref.block, pb.taken_fraction());
        m.set_profiled(bref.block);

        // Weights stay in the hardware's 9-bit counter scale (averaged
        // over merged detections) so the 25%-or-threshold rule below means
        // what it meant in the paper.
        let exec = pb.avg_exec().max(1);
        let arcs = [
            (EdgeKind::Taken, pb.avg_taken()),
            (
                EdgeKind::NotTaken,
                pb.avg_exec().saturating_sub(pb.avg_taken()),
            ),
        ];
        for (kind, w) in arcs {
            let a = ArcKey::new(bref.block, kind);
            m.set_arc_weight(a, w);
            // Hot when the direction carries at least 25% of the branch's
            // flow or its weight exceeds the HSD's hot-branch execution
            // threshold; Cold otherwise.
            let frac = w as f64 / exec as f64;
            let t = if frac >= cfg.hot_arc_fraction || w > cfg.hot_arc_threshold {
                Temp::Hot
            } else {
                Temp::Cold
            };
            m.set_arc_temp(a, t);
        }
    }
}

fn out_arcs(program: &Program, f: FuncId, b: BlockId) -> Vec<(ArcKey, BlockId)> {
    program
        .func(f)
        .successors(b)
        .into_iter()
        .map(|(t, kind)| (ArcKey::new(b, kind), t))
        .collect()
}

fn in_arcs(cfg: &Cfg, b: BlockId) -> Vec<ArcKey> {
    cfg.preds(b)
        .iter()
        .map(|&(p, kind)| ArcKey::new(p, kind))
        .collect()
}

/// Whether `b` may be inferred Hot: with inference disabled, a block ending
/// in a conditional branch that the profiler did not capture is treated as
/// complete information — it cannot be hot (Section 5.1's first
/// configuration axis).
fn may_infer_hot(program: &Program, m: &FuncMark, cfg: &PackConfig, b: BlockId) -> bool {
    if cfg.inference {
        return true;
    }
    let block = program.func(m.func).block(b);
    !block.term.is_cond_branch() || m.is_profiled(b)
}

/// Section 3.2.2 (Figure 4): the temperature-inference fixpoint.
fn infer(program: &Program, cfgs: &mut CfgCache, cfg: &PackConfig, region: &mut Region) {
    loop {
        INFER_ITERATIONS.incr();
        let mut changed = false;
        let fids: Vec<FuncId> = region.marks.keys().copied().collect();
        for fid in fids {
            let func_cfg = cfgs.get(program, fid).clone();
            let func = program.func(fid);
            for b in func.block_ids() {
                let outs = out_arcs(program, fid, b);
                let ins = in_arcs(&func_cfg, b);
                let m = region.marks.get_mut(&fid).expect("marked function");

                // Statement 3: all in-arcs (or all out-arcs) known Cold
                // => block Cold.
                if m.block_temp(b) == Temp::Unknown {
                    let all_in_cold =
                        !ins.is_empty() && ins.iter().all(|&a| m.arc_temp(a) == Temp::Cold);
                    let all_out_cold =
                        !outs.is_empty() && outs.iter().all(|&(a, _)| m.arc_temp(a) == Temp::Cold);
                    if (all_in_cold || all_out_cold) && m.set_block_temp(b, Temp::Cold) {
                        INFER_STMT3.incr();
                        changed = true;
                    }
                }

                // Statement 4: any Hot arc in or out => block Hot.
                if m.block_temp(b) == Temp::Unknown && may_infer_hot(program, m, cfg, b) {
                    let any_hot = ins.iter().any(|&a| m.arc_temp(a) == Temp::Hot)
                        || outs.iter().any(|&(a, _)| m.arc_temp(a) == Temp::Hot);
                    if any_hot && m.set_block_temp(b, Temp::Hot) {
                        INFER_STMT4.incr();
                        changed = true;
                    }
                }

                // Statement 6: Cold block => all arcs in and out Cold.
                if m.block_temp(b) == Temp::Cold {
                    for &a in &ins {
                        if m.set_arc_temp(a, Temp::Cold) {
                            INFER_STMT6.incr();
                            changed = true;
                        }
                    }
                    for &(a, _) in &outs {
                        if m.set_arc_temp(a, Temp::Cold) {
                            INFER_STMT6.incr();
                            changed = true;
                        }
                    }
                }

                // Statement 7: Hot block whose other in-arcs (resp.
                // out-arcs) are all Cold => the remaining Unknown arc is
                // Hot (flow conservation).
                if m.block_temp(b) == Temp::Hot {
                    for side in [
                        &ins[..],
                        &outs.iter().map(|&(a, _)| a).collect::<Vec<_>>()[..],
                    ] {
                        let unknown: Vec<ArcKey> = side
                            .iter()
                            .copied()
                            .filter(|&a| m.arc_temp(a) == Temp::Unknown)
                            .collect();
                        let others_cold = side
                            .iter()
                            .filter(|&&a| m.arc_temp(a) != Temp::Unknown)
                            .all(|&a| m.arc_temp(a) == Temp::Cold);
                        if unknown.len() == 1
                            && others_cold
                            && m.set_arc_temp(unknown[0], Temp::Hot)
                        {
                            INFER_STMT7.incr();
                            changed = true;
                        }
                    }
                }

                // Statements 8-9: Hot call => callee prologue Hot.
                if m.block_temp(b) == Temp::Hot {
                    if let Terminator::Call { callee, .. } = func.block(b).term {
                        let centry = program.func(callee).entry;
                        let cblocks = program.func(callee).blocks.len();
                        let cm = region.mark_mut(callee, cblocks);
                        if cm.set_block_temp(centry, Temp::Hot) {
                            INFER_STMT8.incr();
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Section 3.2.3: heuristic growth.
fn grow(program: &Program, cfgs: &mut CfgCache, cfg: &PackConfig, region: &mut Region) {
    let fids: Vec<FuncId> = region.marks.keys().copied().collect();
    for fid in fids {
        let func_cfg = cfgs.get(program, fid).clone();
        let func = program.func(fid);
        let m = region.marks.get_mut(&fid).expect("marked function");

        // First: include Unknown arcs between two Hot blocks (Cold arcs
        // between Hot blocks stay excluded).
        for b in func.block_ids() {
            if m.block_temp(b) != Temp::Hot {
                continue;
            }
            for (a, t) in out_arcs(program, fid, b) {
                if m.block_temp(t) == Temp::Hot && m.arc_temp(a) == Temp::Unknown {
                    m.set_arc_temp(a, Temp::Hot);
                    GROW_ARCS.incr();
                }
            }
        }

        // Second: expand from each entry block into adjacent predecessors,
        // avoiding Cold arcs and blocks, limited to MAX_BLOCKS additional
        // blocks per entry, stopping at already-Hot predecessors.
        let entries: Vec<BlockId> = func
            .block_ids()
            .filter(|&b| {
                m.block_temp(b) == Temp::Hot
                    && !in_arcs(&func_cfg, b)
                        .iter()
                        .any(|&a| m.arc_temp(a) == Temp::Hot)
            })
            .collect();
        for entry in entries {
            let mut budget = cfg.max_growth_blocks;
            let mut frontier = vec![entry];
            while budget > 0 {
                let Some(b) = frontier.pop() else { break };
                let mut grew = false;
                for &(p, kind) in func_cfg.preds(b) {
                    if budget == 0 {
                        break;
                    }
                    let a = ArcKey::new(p, kind);
                    if m.arc_temp(a) == Temp::Cold || m.block_temp(p) == Temp::Cold {
                        continue;
                    }
                    if m.block_temp(p) == Temp::Hot {
                        // Reached existing hot code: connect and stop.
                        m.set_arc_temp(a, Temp::Hot);
                        continue;
                    }
                    m.set_block_temp(p, Temp::Hot);
                    m.set_arc_temp(a, Temp::Hot);
                    GROW_BLOCKS.incr();
                    budget -= 1;
                    grew = true;
                    frontier.push(p);
                }
                if !grew {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use vp_hsd::PhaseBranch;
    use vp_isa::{CodeRef, Cond, Reg, Src};
    use vp_program::ProgramBuilder;

    fn phase_from(layout: &Layout, branches: &[(CodeRef, u64, u64)]) -> Phase {
        let mut map = BTreeMap::new();
        for &(bref, exec, taken) in branches {
            map.insert(layout.branch_addr(bref), PhaseBranch::once(exec, taken));
        }
        Phase {
            id: 0,
            branches: map,
            first_detected_at: 0,
            detections: 1,
        }
    }

    /// A loop with a rarely-taken side path:
    /// b0(entry) -> b1(header: br to b2 body / b4 exit)
    /// b2(body: br to b3 rare / b5 common) ; b3 -> b5 ; b5 -> b1 (back)
    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(100)),
                |f| {
                    let c = f.cond(Cond::Eq, i, Src::Imm(50));
                    f.if_(c, |f| f.nop());
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.build()
    }

    #[test]
    fn profiled_branches_become_hot() {
        let p = loop_program();
        let layout = Layout::natural(&p);
        // Find the loop-header branch block (first Br block).
        let f0 = p.func(FuncId(0));
        let header = f0
            .blocks_iter()
            .find(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| CodeRef {
                func: FuncId(0),
                block: id,
            })
            .unwrap();
        let phase = phase_from(&layout, &[(header, 100, 99)]);
        let mut cfgs = CfgCache::new();
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        let m = region.mark(FuncId(0)).unwrap();
        assert_eq!(m.block_temp(header.block), Temp::Hot);
        assert!(m.is_profiled(header.block));
        assert_eq!(m.taken_prob(header.block), Some(0.99));
    }

    #[test]
    fn cold_direction_marked_cold() {
        let p = loop_program();
        let layout = Layout::natural(&p);
        let f0 = p.func(FuncId(0));
        let branches: Vec<BlockId> = f0
            .blocks_iter()
            .filter(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| id)
            .collect();
        // Profile both branches: header taken 99%, inner branch taken 1%.
        let header = CodeRef {
            func: FuncId(0),
            block: branches[0],
        };
        let inner = CodeRef {
            func: FuncId(0),
            block: branches[1],
        };
        let phase = phase_from(&layout, &[(header, 100, 99), (inner, 99, 1)]);
        let mut cfgs = CfgCache::new();
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        let m = region.mark(FuncId(0)).unwrap();
        // The inner branch's taken arc (rare path) is Cold; its target
        // block becomes Cold via Statement 3.
        let taken_arc = ArcKey::new(inner.block, EdgeKind::Taken);
        assert_eq!(m.arc_temp(taken_arc), Temp::Cold);
        let rare_block = taken_arc.target(f0).unwrap();
        assert_eq!(m.block_temp(rare_block), Temp::Cold);
    }

    #[test]
    fn inference_propagates_through_unprofiled_blocks() {
        let p = loop_program();
        let layout = Layout::natural(&p);
        let f0 = p.func(FuncId(0));
        let branches: Vec<BlockId> = f0
            .blocks_iter()
            .filter(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| id)
            .collect();
        let header = CodeRef {
            func: FuncId(0),
            block: branches[0],
        };
        let inner = CodeRef {
            func: FuncId(0),
            block: branches[1],
        };
        let phase = phase_from(&layout, &[(header, 100, 99), (inner, 99, 1)]);
        let mut cfgs = CfgCache::new();
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        let m = region.mark(FuncId(0)).unwrap();
        // The common fall-through successor of the inner branch was never
        // profiled but must be inferred Hot (it joins back to the loop).
        let common = ArcKey::new(inner.block, EdgeKind::NotTaken)
            .target(f0)
            .unwrap();
        assert_eq!(m.block_temp(common), Temp::Hot);
    }

    #[test]
    fn hot_call_marks_callee_prologue() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        pb.define(callee, |f| {
            f.addi(Reg::ARG0, Reg::ARG0, 1);
            f.ret();
        });
        let main = pb.declare("main");
        pb.define(main, |f| {
            let i = Reg::int(20);
            f.li(i, 0);
            f.while_(
                |f| f.cond(Cond::Lt, i, Src::Imm(100)),
                |f| {
                    f.call(callee);
                    f.addi(i, i, 1);
                },
            );
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let layout = Layout::natural(&p);
        let mf = p.func(main);
        let header = mf
            .blocks_iter()
            .find(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| CodeRef {
                func: main,
                block: id,
            })
            .unwrap();
        let phase = phase_from(&layout, &[(header, 100, 99)]);
        let mut cfgs = CfgCache::new();
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        let cm = region.mark(callee).expect("callee must join the region");
        assert_eq!(cm.block_temp(p.func(callee).entry), Temp::Hot);
    }

    #[test]
    fn no_inference_mode_keeps_unprofiled_branch_blocks_unknown() {
        let p = loop_program();
        let layout = Layout::natural(&p);
        let f0 = p.func(FuncId(0));
        let branches: Vec<BlockId> = f0
            .blocks_iter()
            .filter(|(_, b)| b.term.is_cond_branch())
            .map(|(id, _)| id)
            .collect();
        // Profile ONLY the header; the inner branch is missing from the
        // BBB (contention).
        let header = CodeRef {
            func: FuncId(0),
            block: branches[0],
        };
        let phase = phase_from(&layout, &[(header, 100, 99)]);
        let mut cfgs = CfgCache::new();
        let no_inf = PackConfig {
            inference: false,
            ..PackConfig::default()
        };
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &no_inf);
        let m = region.mark(FuncId(0)).unwrap();
        // The unprofiled inner branch block must not be inferred Hot.
        assert_ne!(m.block_temp(branches[1]), Temp::Hot);

        // With inference on, it is.
        let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());
        let m = region.mark(FuncId(0)).unwrap();
        assert_eq!(m.block_temp(branches[1]), Temp::Hot);
    }
}
