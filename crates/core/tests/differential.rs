//! Differential replay against the real packing pipeline: a correctly
//! rewritten binary must diff clean against the original capture, and an
//! injected rewriting fault (a corrupted launch-point target) must be
//! detected and reported with first-divergence forensics.

use std::collections::BTreeMap;
use vp_core::{build_packages, identify_region, rewrite, CfgCache, PackConfig, PackOutput};
use vp_exec::{diff_traces, CapturedTrace, DiffOptions, DiffVerdict, RunConfig};
use vp_hsd::{Phase, PhaseBranch};
use vp_isa::{CodeRef, Cond, Reg, Src};
use vp_program::{Layout, Program, ProgramBuilder, Terminator};

fn hot_loop_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let helper = pb.declare("helper");
    pb.define(helper, |f| {
        f.addi(Reg::ARG0, Reg::ARG0, 1);
        f.ret();
    });
    let main = pb.declare("main");
    pb.define(main, |f| {
        let i = Reg::int(20);
        f.li(i, 0);
        f.while_(
            |f| f.cond(Cond::Lt, i, Src::Imm(200)),
            |f| {
                f.mov(Reg::ARG0, i);
                f.call(helper);
                f.addi(i, i, 1);
            },
        );
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

fn phase_for(p: &Program, layout: &Layout) -> Phase {
    let mut branches = BTreeMap::new();
    for f in &p.funcs {
        for (bid, b) in f.blocks_iter() {
            if b.term.is_cond_branch() {
                let addr = layout.branch_addr(CodeRef {
                    func: f.id,
                    block: bid,
                });
                branches.insert(addr, PhaseBranch::once(200, 199));
            }
        }
    }
    Phase {
        id: 0,
        branches,
        first_detected_at: 0,
        detections: 1,
    }
}

fn pack_it(p: &Program) -> PackOutput {
    let layout = Layout::natural(p);
    let phase = phase_for(p, &layout);
    let cfg = PackConfig::default();
    let mut cfgs = CfgCache::new();
    let region = identify_region(p, &layout, &mut cfgs, &phase, &cfg);
    let pkgs = build_packages(p, &mut cfgs, &region, &cfg);
    rewrite(p, pkgs, vec![region], &cfg)
}

fn capture(p: &Program) -> CapturedTrace {
    let layout = Layout::natural(p);
    CapturedTrace::capture(p, &layout, &RunConfig::default()).expect("capture")
}

/// The pipeline's own rewrite must be architecturally transparent: the
/// packed capture aligns visit-for-visit with the original one.
#[test]
fn packed_binary_diffs_clean_against_original() {
    let p = hot_loop_program();
    let out = pack_it(&p);
    assert!(out.launch_points > 0, "test needs a patched launch point");

    let rep = diff_traces(
        &capture(&p),
        &capture(&out.program),
        &out.identity_map(),
        &DiffOptions::default(),
    );
    assert_eq!(rep.verdict, DiffVerdict::Clean, "{rep}");
    assert_eq!(rep.aligned_visits, rep.orig_visits);
    assert!(
        rep.exit_events > 0,
        "leaving the package must pass through exit blocks: {rep}"
    );
}

/// Injected rewriting fault: corrupt one launch-point target so the
/// packed binary enters the package at the wrong block. The diff must
/// flag it and carry first-divergence context.
#[test]
fn corrupted_launch_point_is_detected_with_forensics() {
    let p = hot_loop_program();
    let out = pack_it(&p);
    let pkg = &out.packages[0];

    // Find a launch point: an original-code terminator targeting the
    // package, and retarget it one block off (skipping to a different
    // package block than the rewriter chose).
    let mut bad = out.program.clone();
    let n_blocks = bad.func(pkg.func).blocks.len() as u32;
    let mut corrupted = false;
    'outer: for f in &mut bad.funcs {
        if f.is_package() {
            continue;
        }
        for block in &mut f.blocks {
            let retarget = |t: &mut CodeRef| {
                t.block = vp_isa::BlockId((t.block.0 + 1) % n_blocks);
            };
            match &mut block.term {
                Terminator::Goto(t) if t.func == pkg.func => {
                    retarget(t);
                    corrupted = true;
                    break 'outer;
                }
                Terminator::Br {
                    taken, not_taken, ..
                } => {
                    if taken.func == pkg.func {
                        retarget(taken);
                        corrupted = true;
                        break 'outer;
                    }
                    if not_taken.func == pkg.func {
                        retarget(not_taken);
                        corrupted = true;
                        break 'outer;
                    }
                }
                _ => {}
            }
        }
    }
    if !corrupted {
        // Entry-launch-only programs: bend the package's first Br one
        // block off instead (a corrupted internal rewrite).
        let f = bad.func_mut(pkg.func);
        for block in &mut f.blocks {
            if let Terminator::Br { taken, .. } = &mut block.term {
                taken.block = vp_isa::BlockId((taken.block.0 + 1) % n_blocks);
                corrupted = true;
                break;
            }
        }
    }
    assert!(corrupted, "no corruptible transfer found");
    assert_eq!(bad.validate(), Ok(()), "corruption must stay executable");

    // The corrupted binary may no longer terminate; bound the capture.
    // An early mismatch is a divergence even when the run truncates.
    let layout = Layout::natural(&bad);
    let bad_trace = CapturedTrace::capture(
        &bad,
        &layout,
        &RunConfig {
            max_insts: 1_000_000,
            ..RunConfig::default()
        },
    )
    .expect("corrupted capture");

    let rep = diff_traces(
        &capture(&p),
        &bad_trace,
        &out.identity_map(),
        &DiffOptions::default(),
    );
    assert_eq!(rep.verdict, DiffVerdict::Diverged, "{rep}");
    let d = rep.divergence.as_ref().expect("forensics attached");
    assert!(
        d.expected.is_some() || d.actual.is_some(),
        "divergence names at least one side"
    );
    let rendered = format!("{rep}");
    assert!(rendered.contains("first divergence"), "{rendered}");
    assert!(rendered.contains("expected"), "{rendered}");
}
