//! Functions: named collections of basic blocks with a single entry.

use crate::block::{Block, EdgeKind};
use vp_isa::{BlockId, FuncId};

/// Whether a function is original program code or an extracted package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// Code present in the input binary.
    Original,
    /// A Vacuum Packing package extracted for the given phase index.
    Package {
        /// Index of the phase (hot spot) this package was specialized for.
        phase: usize,
    },
}

/// A function: blocks indexed by [`BlockId`], one entry block.
#[derive(Debug, Clone)]
pub struct Function {
    /// Dense id within the owning [`crate::Program`]; assigned by
    /// [`crate::Program::push_func`].
    pub id: FuncId,
    /// Human-readable name (unique by builder convention, not enforced).
    pub name: String,
    /// The block where calls to this function begin executing.
    pub entry: BlockId,
    /// All blocks; `BlockId` indexes into this vector.
    pub blocks: Vec<Block>,
    /// Original code or extracted package.
    pub kind: FuncKind,
}

impl Function {
    /// Creates an empty original function. The id is assigned when the
    /// function is pushed into a program.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            id: FuncId(0),
            name: name.into(),
            entry: BlockId(0),
            blocks: Vec::new(),
            kind: FuncKind::Original,
        }
    }

    /// Appends a block, returning its id.
    pub fn push_block(&mut self, b: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(b);
        id
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterates `(BlockId, &Block)` pairs in id order.
    pub fn blocks_iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids in this function.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Intra-function successors of `b`.
    pub fn successors(&self, b: BlockId) -> Vec<(BlockId, EdgeKind)> {
        self.block(b).successors(self.id)
    }

    /// Static instruction count with each terminator at unit cost.
    pub fn static_insts(&self) -> u64 {
        self.blocks.iter().map(Block::static_insts).sum()
    }

    /// Whether this function is an extracted package.
    pub fn is_package(&self) -> bool {
        matches!(self.kind, FuncKind::Package { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;

    #[test]
    fn push_block_assigns_dense_ids() {
        let mut f = Function::new("f");
        let a = f.push_block(Block::empty(Terminator::Halt));
        let b = f.push_block(Block::empty(Terminator::Halt));
        assert_eq!(a, BlockId(0));
        assert_eq!(b, BlockId(1));
        assert_eq!(f.static_insts(), 2);
    }

    #[test]
    fn package_kind_reported() {
        let mut f = Function::new("pkg");
        f.kind = FuncKind::Package { phase: 2 };
        assert!(f.is_package());
        assert!(!Function::new("g").is_package());
    }
}
