//! Backward register liveness.
//!
//! Package extraction (paper Section 3.3.1) must know which registers are
//! live along each hot-to-cold exit path so that dummy consumer instructions
//! can represent them inside the package. This module provides the standard
//! iterative backward data-flow solution over one function's CFG.
//!
//! Calling convention (see `vp-isa`): calls are treated as reading the
//! argument registers `r4..r11` plus `r1` (sp) and writing `r4`; returns
//! read `r4` and `r1`. This is deliberately conservative — a hardware
//! profiler has no precise interprocedural summaries either.

use crate::cfg::Cfg;
use crate::func::Function;
use vp_isa::reg::RegSet;
use vp_isa::BlockId;

/// Per-block liveness solution for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solves liveness for `f` using its CFG.
    pub fn new(f: &Function, cfg: &Cfg) -> Liveness {
        let n = f.blocks.len();
        let mut gen = vec![RegSet::new(); n]; // upward-exposed uses
        let mut kill = vec![RegSet::new(); n]; // defs
        for (bid, block) in f.blocks_iter() {
            let i = bid.0 as usize;
            // Walk forward, recording uses not yet defined and all defs.
            for inst in &block.insts {
                for u in inst.uses() {
                    if !kill[i].contains(u) {
                        gen[i].insert(u);
                    }
                }
                for d in inst.defs() {
                    kill[i].insert(d);
                }
            }
            for u in block.term.uses() {
                if !kill[i].contains(u) {
                    gen[i].insert(u);
                }
            }
            for d in block.term.defs() {
                kill[i].insert(d);
            }
        }

        let mut live_in = vec![RegSet::new(); n];
        let mut live_out = vec![RegSet::new(); n];
        // Iterate to fixpoint in reverse RPO (fast convergence for
        // reducible CFGs).
        let order: Vec<BlockId> = cfg.rpo().iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let i = b.0 as usize;
                let mut out = RegSet::new();
                for &(s, _) in cfg.succs(b) {
                    out.union_with(&live_in[s.0 as usize]);
                }
                let mut inp = out;
                for d in kill[i].iter() {
                    inp.remove(d);
                }
                // (out - kill) ∪ gen
                inp.union_with(&gen[i]);
                if inp != live_in[i] || out != live_out[i] {
                    live_in[i] = inp;
                    live_out[i] = out;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &RegSet {
        &self.live_in[b.0 as usize]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &RegSet {
        &self.live_out[b.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Terminator};
    use vp_isa::{AluOp, CodeRef, Cond, Inst, Reg, Src};

    fn add(rd: u8, rs1: u8, rs2: u8) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            rd: Reg::int(rd),
            rs1: Reg::int(rs1),
            rs2: Reg::int(rs2).into(),
        }
    }

    /// b0: r20 = r21 + r22; branch on r20 -> b1 / b2
    /// b1: r23 = r21 + r21; goto b2
    /// b2: halt (uses nothing)
    fn sample() -> Function {
        let mut f = Function::new("f");
        f.push_block(Block {
            insts: vec![add(20, 21, 22)],
            term: Terminator::Br {
                cond: Cond::Ne,
                rs1: Reg::int(20),
                rs2: Src::Imm(0),
                taken: CodeRef::new(0, 1),
                not_taken: CodeRef::new(0, 2),
            },
        });
        f.push_block(Block {
            insts: vec![add(23, 21, 21)],
            term: Terminator::Goto(CodeRef::new(0, 2)),
        });
        f.push_block(Block::empty(Terminator::Halt));
        f
    }

    #[test]
    fn upward_exposed_uses_are_live_in() {
        let f = sample();
        let live = Liveness::new(&f, &Cfg::new(&f));
        let li = live.live_in(BlockId(0));
        assert!(li.contains(Reg::int(21)));
        assert!(li.contains(Reg::int(22)));
        assert!(!li.contains(Reg::int(20)), "r20 is defined before its use");
    }

    #[test]
    fn liveness_flows_across_edges() {
        let f = sample();
        let live = Liveness::new(&f, &Cfg::new(&f));
        // r21 is used in b1, so it is live out of b0.
        assert!(live.live_out(BlockId(0)).contains(Reg::int(21)));
        // r23 is dead (never used).
        assert!(!live.live_out(BlockId(1)).contains(Reg::int(23)));
    }

    #[test]
    fn loop_liveness_reaches_fixpoint() {
        // b0: r20 = r21+r22; br r20 -> b0 (loop) / b1; b1: halt.
        let mut f = Function::new("f");
        f.push_block(Block {
            insts: vec![add(20, 21, 22)],
            term: Terminator::Br {
                cond: Cond::Ne,
                rs1: Reg::int(20),
                rs2: Src::Imm(0),
                taken: CodeRef::new(0, 0),
                not_taken: CodeRef::new(0, 1),
            },
        });
        f.push_block(Block::empty(Terminator::Halt));
        let live = Liveness::new(&f, &Cfg::new(&f));
        // Around the loop, r21/r22 stay live.
        assert!(live.live_out(BlockId(0)).contains(Reg::int(21)));
        assert!(live.live_out(BlockId(0)).contains(Reg::int(22)));
    }

    #[test]
    fn call_terminator_keeps_args_live() {
        let mut f = Function::new("f");
        f.push_block(Block::empty(Terminator::Call {
            callee: vp_isa::FuncId(1),
            ret_to: BlockId(1),
        }));
        f.push_block(Block::empty(Terminator::Ret));
        let live = Liveness::new(&f, &Cfg::new(&f));
        assert!(live.live_in(BlockId(0)).contains(Reg::arg(0)));
        assert!(live.live_in(BlockId(0)).contains(Reg::arg(7)));
    }
}
