//! Human-readable listings of programs, functions and layouts — the
//! "objdump view" of this substrate. Used by the examples and invaluable
//! when debugging extraction decisions.

use crate::block::Terminator;
use crate::layout::Layout;
use crate::Program;
use std::fmt::Write;
use vp_isa::{CodeRef, FuncId};

/// Renders one function as an assembly-style listing.
///
/// ```
/// use vp_program::{ProgramBuilder, pretty};
/// use vp_isa::Reg;
///
/// let mut pb = ProgramBuilder::new();
/// pb.func("main", |f| { f.li(Reg::int(8), 1); f.halt(); });
/// let p = pb.build();
/// let text = pretty::dump_function(&p, p.funcs[0].id, None);
/// assert!(text.contains("main"));
/// assert!(text.contains("li r8, 1"));
/// ```
pub fn dump_function(p: &Program, id: FuncId, layout: Option<&Layout>) -> String {
    let f = p.func(id);
    let mut out = String::new();
    let kind = if f.is_package() { " [package]" } else { "" };
    let _ = writeln!(out, "{} <{}>{}:", f.id, f.name, kind);
    for (bid, block) in f.blocks_iter() {
        let addr = layout
            .map(|l| {
                format!(
                    "{:#08x} ",
                    l.addr_of(CodeRef {
                        func: id,
                        block: bid
                    })
                )
            })
            .unwrap_or_default();
        let entry = if bid == f.entry { " (entry)" } else { "" };
        let _ = writeln!(out, "{addr}{bid}{entry}:");
        for inst in &block.insts {
            let _ = writeln!(out, "    {inst}");
        }
        let _ = writeln!(out, "    {}", render_term(p, &block.term));
    }
    out
}

/// Renders the whole program.
pub fn dump_program(p: &Program, layout: Option<&Layout>) -> String {
    let mut out = String::new();
    for f in &p.funcs {
        out.push_str(&dump_function(p, f.id, layout));
        out.push('\n');
    }
    out
}

fn render_ref(p: &Program, r: CodeRef) -> String {
    let name = &p.func(r.func).name;
    format!("{}@{}:{}", name, r.func, r.block)
}

fn render_term(p: &Program, t: &Terminator) -> String {
    match t {
        Terminator::Goto(r) => format!("goto {}", render_ref(p, *r)),
        Terminator::Br {
            cond,
            rs1,
            rs2,
            taken,
            not_taken,
        } => format!(
            "br.{cond:?} {rs1}, {rs2} -> {} | {}",
            render_ref(p, *taken),
            render_ref(p, *not_taken)
        ),
        Terminator::Call { callee, ret_to } => {
            format!("call {} ; ret to {ret_to}", p.func(*callee).name)
        }
        Terminator::CallThrough { target, ret_to } => {
            format!("callthrough {} ; ret to {ret_to}", render_ref(p, *target))
        }
        Terminator::Ret => "ret".to_string(),
        Terminator::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use vp_isa::{Cond, Reg, Src};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("helper");
        pb.define(callee, |f| f.ret());
        let main = pb.declare("main");
        pb.define(main, |f| {
            let r = Reg::int(8);
            f.li(r, 3);
            let c = f.cond(Cond::Lt, r, Src::Imm(10));
            f.if_(c, |f| f.call(callee));
            f.halt();
        });
        pb.set_entry(main);
        pb.build()
    }

    #[test]
    fn function_listing_names_targets() {
        let p = sample();
        let text = dump_function(&p, FuncId(1), None);
        assert!(text.contains("<main>"));
        assert!(text.contains("call helper"));
        assert!(text.contains("br.Lt r8, 10"));
        assert!(text.contains("(entry)"));
    }

    #[test]
    fn program_listing_covers_all_functions() {
        let p = sample();
        let text = dump_program(&p, None);
        assert!(text.contains("<helper>"));
        assert!(text.contains("<main>"));
    }

    #[test]
    fn layout_addresses_appear_when_provided() {
        let p = sample();
        let layout = Layout::natural(&p);
        let text = dump_program(&p, Some(&layout));
        assert!(
            text.contains("0x010000"),
            "code-base addresses rendered: {text}"
        );
    }
}
