//! Structured program construction.
//!
//! The workload suite builds Table-1-style benchmark programs through this
//! DSL: structured control flow (`if_`, `while_`, `for_range`, `switch`)
//! lowers to basic blocks with explicit terminators, producing exactly the
//! shape a compiler's code generator would hand to the linker.
//!
//! ```
//! use vp_program::ProgramBuilder;
//! use vp_isa::{Cond, Reg, Src};
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main");
//! pb.define(main, |f| {
//!     let i = Reg::int(8);
//!     f.li(i, 0);
//!     f.while_(
//!         |f| f.cond(Cond::Lt, i, Src::Imm(10)),
//!         |f| {
//!             f.addi(i, i, 1);
//!         },
//!     );
//!     f.halt();
//! });
//! let p = pb.build();
//! p.validate().unwrap();
//! ```

use crate::block::{Block, Terminator};
use crate::func::Function;
use crate::{DataSegment, Program};
use std::collections::HashMap;
use vp_isa::{AluOp, BlockId, CodeRef, Cond, FaluOp, FuncId, Inst, Reg, Src};

/// Base address of the builder-managed data region.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Base address of the stack (grows downward).
pub const STACK_BASE: u64 = 0x7fff_0000;

/// A comparison awaiting use by a conditional construct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CondExpr {
    /// Comparison condition.
    pub cond: Cond,
    /// Left operand.
    pub rs1: Reg,
    /// Right operand.
    pub rs2: Src,
}

/// Builds a whole [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Function>,
    defined: Vec<bool>,
    names: HashMap<String, FuncId>,
    data: Vec<DataSegment>,
    next_data: u64,
    entry: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            next_data: DATA_BASE,
            ..ProgramBuilder::default()
        }
    }

    /// Declares a function name, returning its id. Bodies may reference
    /// declared-but-not-yet-defined functions, enabling mutual recursion.
    ///
    /// # Panics
    ///
    /// Panics if the name was already declared.
    pub fn declare(&mut self, name: &str) -> FuncId {
        assert!(
            !self.names.contains_key(name),
            "function {name} declared twice"
        );
        let id = FuncId(self.funcs.len() as u32);
        let mut f = Function::new(name);
        f.id = id;
        self.funcs.push(f);
        self.defined.push(false);
        self.names.insert(name.to_string(), id);
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Defines the body of a declared function.
    ///
    /// # Panics
    ///
    /// Panics if the function was already defined, or if the body leaves an
    /// unterminated block.
    pub fn define(&mut self, id: FuncId, build: impl FnOnce(&mut FunctionBuilder)) {
        assert!(!self.defined[id.0 as usize], "function {id} defined twice");
        let mut fb = FunctionBuilder::new(id);
        build(&mut fb);
        let blocks = fb.finish();
        self.funcs[id.0 as usize].blocks = blocks;
        self.defined[id.0 as usize] = true;
    }

    /// Declares and defines a function in one step.
    pub fn func(&mut self, name: &str, build: impl FnOnce(&mut FunctionBuilder)) -> FuncId {
        let id = self.declare(name);
        self.define(id, build);
        id
    }

    /// Looks up a declared function by name.
    pub fn lookup(&self, name: &str) -> Option<FuncId> {
        self.names.get(name).copied()
    }

    /// Allocates an initialized data segment, returning its base address.
    pub fn data(&mut self, words: Vec<u64>) -> u64 {
        let base = self.next_data;
        self.next_data += 8 * words.len().max(1) as u64;
        self.data.push(DataSegment { base, words });
        base
    }

    /// Allocates `n` zeroed words, returning the base address.
    pub fn zeros(&mut self, n: usize) -> u64 {
        self.data(vec![0; n])
    }

    /// Sets the program entry function (defaults to the first declared).
    pub fn set_entry(&mut self, f: FuncId) {
        self.entry = Some(f);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any declared function lacks a definition or if the
    /// assembled program fails validation.
    pub fn build(self) -> Program {
        for (i, d) in self.defined.iter().enumerate() {
            assert!(
                *d,
                "function {} declared but never defined",
                self.funcs[i].name
            );
        }
        let p = Program {
            funcs: self.funcs,
            entry: self.entry.expect("program has no functions"),
            data: self.data,
        };
        if let Err(e) = p.validate() {
            panic!("builder produced invalid program: {e}");
        }
        p
    }
}

struct ProtoBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

/// One arm of [`FunctionBuilder::switch`]: the selector constant and the
/// closure that emits the arm's body.
pub type SwitchArm<'a> = (i64, Box<dyn FnOnce(&mut FunctionBuilder) + 'a>);

/// Builds one function's body.
pub struct FunctionBuilder {
    fid: FuncId,
    blocks: Vec<ProtoBlock>,
    cur: usize,
}

impl FunctionBuilder {
    fn new(fid: FuncId) -> FunctionBuilder {
        FunctionBuilder {
            fid,
            blocks: vec![ProtoBlock {
                insts: vec![],
                term: None,
            }],
            cur: 0,
        }
    }

    /// The id of the function being built.
    pub fn func_id(&self) -> FuncId {
        self.fid
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.cur as u32)
    }

    fn cref(&self, b: BlockId) -> CodeRef {
        CodeRef {
            func: self.fid,
            block: b,
        }
    }

    /// Creates a new, empty, unterminated block without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(ProtoBlock {
            insts: vec![],
            term: None,
        });
        id
    }

    /// Switches instruction emission to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated or if the current block is not.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.blocks[self.cur].term.is_some(),
            "switching away from unterminated block {}",
            self.cur
        );
        assert!(
            self.blocks[b.0 as usize].term.is_none(),
            "switching to terminated block {b}"
        );
        self.cur = b.0 as usize;
    }

    /// Emits a raw instruction into the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, i: Inst) {
        assert!(
            self.blocks[self.cur].term.is_none(),
            "emitting into terminated block"
        );
        self.blocks[self.cur].insts.push(i);
    }

    fn terminate(&mut self, t: Terminator) {
        assert!(
            self.blocks[self.cur].term.is_none(),
            "block terminated twice"
        );
        self.blocks[self.cur].term = Some(t);
    }

    // ---- instruction sugar -------------------------------------------------

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) {
        self.emit(Inst::Li { rd, imm });
    }

    /// `rd = imm` (floating point).
    pub fn fli(&mut self, rd: Reg, imm: f64) {
        self.emit(Inst::Fli { rd, imm });
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Mov { rd, rs });
    }

    /// `rd = op(rs1, rs2)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.emit(Inst::Alu {
            op,
            rd,
            rs1,
            rs2: rs2.into(),
        });
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm` (alias of [`FunctionBuilder::add`] for immediates).
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu(AluOp::Add, rd, rs1, imm);
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `rd = rs1 / rs2` (signed; division by zero yields 0).
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Div, rd, rs1, rs2);
    }

    /// `rd = rs1 % rs2` (signed; remainder by zero yields 0).
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Rem, rd, rs1, rs2);
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::And, rd, rs1, rs2);
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Or, rd, rs1, rs2);
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Xor, rd, rs1, rs2);
    }

    /// `rd = rs1 << rs2`.
    pub fn shl(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Shl, rd, rs1, rs2);
    }

    /// `rd = rs1 >> rs2` (logical).
    pub fn shr(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Src>) {
        self.alu(AluOp::Shr, rd, rs1, rs2);
    }

    /// `rd = op(rs1, rs2)` (floating point).
    pub fn falu(&mut self, op: FaluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::Falu { op, rd, rs1, rs2 });
    }

    /// `rd = rs as f64`.
    pub fn itof(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Itof { rd, rs });
    }

    /// `rd = rs as i64` (truncating).
    pub fn ftoi(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Ftoi { rd, rs });
    }

    /// `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Load { rd, base, offset });
    }

    /// `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64) {
        self.emit(Inst::Store { src, base, offset });
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Builds a [`CondExpr`] for use with the structured constructs.
    pub fn cond(&mut self, cond: Cond, rs1: Reg, rs2: impl Into<Src>) -> CondExpr {
        CondExpr {
            cond,
            rs1,
            rs2: rs2.into(),
        }
    }

    // ---- terminators -------------------------------------------------------

    /// Ends the current block with an unconditional transfer.
    pub fn goto(&mut self, b: BlockId) {
        let t = self.cref(b);
        self.terminate(Terminator::Goto(t));
    }

    /// Ends the current block with a conditional branch.
    pub fn branch(&mut self, c: CondExpr, taken: BlockId, not_taken: BlockId) {
        let (t, nt) = (self.cref(taken), self.cref(not_taken));
        self.terminate(Terminator::Br {
            cond: c.cond,
            rs1: c.rs1,
            rs2: c.rs2,
            taken: t,
            not_taken: nt,
        });
    }

    /// Ends the current block with a call; emission continues in a fresh
    /// continuation block.
    pub fn call(&mut self, callee: FuncId) {
        let cont = self.new_block();
        self.terminate(Terminator::Call {
            callee,
            ret_to: cont,
        });
        self.cur = cont.0 as usize;
    }

    /// Moves `args` into the argument registers, then calls `callee`.
    ///
    /// # Panics
    ///
    /// Panics if more than 8 arguments are given.
    pub fn call_args(&mut self, callee: FuncId, args: &[Src]) {
        assert!(args.len() <= 8, "at most 8 register arguments");
        for (i, &a) in args.iter().enumerate() {
            match a {
                Src::Reg(r) => {
                    if r != Reg::arg(i as u8) {
                        self.mov(Reg::arg(i as u8), r);
                    }
                }
                Src::Imm(v) => self.li(Reg::arg(i as u8), v),
            }
        }
        self.call(callee);
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Ret);
    }

    /// Ends the current block with a halt.
    pub fn halt(&mut self) {
        self.terminate(Terminator::Halt);
    }

    // ---- structured control flow -------------------------------------------

    /// `if cond { then }`: branches to `then` when the condition holds,
    /// joining afterwards.
    pub fn if_(&mut self, c: CondExpr, then: impl FnOnce(&mut Self)) {
        let then_b = self.new_block();
        let join = self.new_block();
        self.branch(c, then_b, join);
        self.cur = then_b.0 as usize;
        then(self);
        if self.blocks[self.cur].term.is_none() {
            self.goto(join);
        }
        self.cur = join.0 as usize;
    }

    /// `if cond { then } else { els }`.
    pub fn if_else(
        &mut self,
        c: CondExpr,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block();
        let else_b = self.new_block();
        let join = self.new_block();
        self.branch(c, then_b, else_b);
        self.cur = then_b.0 as usize;
        then(self);
        if self.blocks[self.cur].term.is_none() {
            self.goto(join);
        }
        self.cur = else_b.0 as usize;
        els(self);
        if self.blocks[self.cur].term.is_none() {
            self.goto(join);
        }
        self.cur = join.0 as usize;
    }

    /// `while cond { body }`. The `header` closure may emit instructions to
    /// compute the condition; it runs once per iteration.
    pub fn while_(
        &mut self,
        header: impl FnOnce(&mut Self) -> CondExpr,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.goto(head);
        self.cur = head.0 as usize;
        let c = header(self);
        self.branch(c, body_b, exit);
        self.cur = body_b.0 as usize;
        body(self);
        if self.blocks[self.cur].term.is_none() {
            self.goto(head);
        }
        self.cur = exit.0 as usize;
    }

    /// `do { body } while cond`: the body runs at least once; the trailer
    /// closure computes the loop-back condition.
    pub fn do_while(
        &mut self,
        body: impl FnOnce(&mut Self),
        trailer: impl FnOnce(&mut Self) -> CondExpr,
    ) {
        let body_b = self.new_block();
        let exit = self.new_block();
        self.goto(body_b);
        self.cur = body_b.0 as usize;
        body(self);
        let c = trailer(self);
        self.branch(c, body_b, exit);
        self.cur = exit.0 as usize;
    }

    /// `for i in start..end { body }` with `i` held in `counter`.
    pub fn for_range(
        &mut self,
        counter: Reg,
        start: i64,
        end: impl Into<Src>,
        body: impl FnOnce(&mut Self),
    ) {
        let end = end.into();
        self.li(counter, start);
        self.while_(
            |f| f.cond(Cond::Lt, counter, end),
            |f| {
                body(f);
                f.addi(counter, counter, 1);
            },
        );
    }

    /// A dispatch ladder comparing `selector` against each arm's constant:
    /// the software equivalent of a switch statement.
    pub fn switch(
        &mut self,
        selector: Reg,
        arms: Vec<SwitchArm<'_>>,
        default: impl FnOnce(&mut Self),
    ) {
        let join = self.new_block();
        for (value, arm) in arms {
            let arm_b = self.new_block();
            let next = self.new_block();
            let c = self.cond(Cond::Eq, selector, Src::Imm(value));
            self.branch(c, arm_b, next);
            self.cur = arm_b.0 as usize;
            arm(self);
            if self.blocks[self.cur].term.is_none() {
                self.goto(join);
            }
            self.cur = next.0 as usize;
        }
        default(self);
        if self.blocks[self.cur].term.is_none() {
            self.goto(join);
        }
        self.cur = join.0 as usize;
    }

    // ---- stack frames --------------------------------------------------

    /// Opens a frame of `words` stack words (`sp -= 8 * words`).
    pub fn frame_alloc(&mut self, words: i64) {
        self.alu(AluOp::Sub, Reg::SP, Reg::SP, 8 * words);
    }

    /// Closes a frame opened by [`FunctionBuilder::frame_alloc`].
    pub fn frame_free(&mut self, words: i64) {
        self.alu(AluOp::Add, Reg::SP, Reg::SP, 8 * words);
    }

    /// Stores `r` into frame slot `slot`.
    pub fn spill(&mut self, r: Reg, slot: i64) {
        self.store(r, Reg::SP, 8 * slot);
    }

    /// Loads `r` from frame slot `slot`.
    pub fn reload(&mut self, r: Reg, slot: i64) {
        self.load(r, Reg::SP, 8 * slot);
    }

    fn finish(self) -> Vec<Block> {
        // A structured construct may leave its join block unterminated when
        // every path out of the construct returns or halts; such joins are
        // unreachable dead code and are sealed with `Halt`. An unterminated
        // block that *is* referenced is a construction bug.
        let mut referenced = vec![false; self.blocks.len()];
        referenced[0] = true;
        for pb in &self.blocks {
            if let Some(t) = &pb.term {
                for target in t.code_targets() {
                    if target.func == self.fid {
                        referenced[target.block.0 as usize] = true;
                    }
                }
                if let Terminator::Call { ret_to, .. } = t {
                    referenced[ret_to.0 as usize] = true;
                }
            }
        }
        self.blocks
            .into_iter()
            .enumerate()
            .map(|(i, pb)| {
                let term = match pb.term {
                    Some(t) => t,
                    None if !referenced[i] => Terminator::Halt,
                    None => panic!("block b{i} left unterminated"),
                };
                Block {
                    insts: pb.insts,
                    term,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    #[test]
    fn if_else_shapes_a_diamond() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(8);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.li(r, 2), |f| f.li(r, 3));
            f.halt();
        });
        let p = pb.build();
        let cfg = Cfg::new(p.func(FuncId(0)));
        // entry branches to two blocks that join.
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        let join = cfg.succs(BlockId(1))[0].0;
        assert_eq!(cfg.succs(BlockId(2))[0].0, join);
    }

    #[test]
    fn while_creates_back_edge() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let i = Reg::int(8);
            f.li(i, 0);
            f.while_(|f| f.cond(Cond::Lt, i, Src::Imm(5)), |f| f.addi(i, i, 1));
            f.halt();
        });
        let p = pb.build();
        let cfg = Cfg::new(p.func(FuncId(0)));
        assert_eq!(cfg.back_edges().len(), 1);
    }

    #[test]
    fn call_splits_block_at_continuation() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        pb.define(callee, |f| f.ret());
        let main = pb.declare("main");
        pb.define(main, |f| {
            f.call(callee);
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let mf = p.func(main);
        assert!(matches!(mf.block(BlockId(0)).term, Terminator::Call { .. }));
    }

    #[test]
    fn call_args_loads_argument_registers() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        pb.define(callee, |f| f.ret());
        let main = pb.declare("main");
        pb.define(main, |f| {
            f.call_args(callee, &[Src::Imm(7), Src::Reg(Reg::int(20))]);
            f.halt();
        });
        pb.set_entry(main);
        let p = pb.build();
        let b0 = p.func(main).block(BlockId(0));
        assert_eq!(b0.insts.len(), 2);
        assert_eq!(
            b0.insts[0],
            Inst::Li {
                rd: Reg::arg(0),
                imm: 7
            }
        );
        assert_eq!(
            b0.insts[1],
            Inst::Mov {
                rd: Reg::arg(1),
                rs: Reg::int(20)
            }
        );
    }

    #[test]
    fn switch_builds_dispatch_ladder() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let s = Reg::int(8);
            f.li(s, 2);
            f.switch(
                s,
                vec![
                    (
                        1,
                        Box::new(|f: &mut FunctionBuilder| f.li(Reg::int(9), 100)),
                    ),
                    (
                        2,
                        Box::new(|f: &mut FunctionBuilder| f.li(Reg::int(9), 200)),
                    ),
                ],
                |f| f.li(Reg::int(9), 0),
            );
            f.halt();
        });
        let p = pb.build();
        // Two comparisons appear as two conditional branches.
        let branches = p
            .func(FuncId(0))
            .blocks
            .iter()
            .filter(|b| b.term.is_cond_branch())
            .count();
        assert_eq!(branches, 2);
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn unterminated_function_panics() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            f.li(Reg::int(8), 0);
            // no terminator
        });
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_names_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.declare("f");
        pb.declare("f");
    }

    #[test]
    fn data_segments_do_not_overlap() {
        let mut pb = ProgramBuilder::new();
        let a = pb.data(vec![1, 2, 3]);
        let b = pb.zeros(5);
        assert!(b >= a + 24);
        pb.func("main", |f| f.halt());
        let p = pb.build();
        assert_eq!(p.data.len(), 2);
    }
}
