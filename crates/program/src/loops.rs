//! Dominators and natural loops.
//!
//! The paper motivates regions over traces precisely because they give the
//! optimizer loop-level scope ("loops provided the greatest performance
//! opportunities", Section 2, citing Bruening & Duesterwald). This module
//! provides the analysis that loop transformations on packages need:
//! immediate dominators (Cooper–Harvey–Kennedy) and the natural loops of
//! the back edges.

use crate::cfg::Cfg;
use std::collections::BTreeSet;
use vp_isa::BlockId;

/// Immediate-dominator tree for one function's CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators over the reachable CFG using the iterative
    /// RPO algorithm of Cooper, Harvey and Kennedy.
    pub fn new(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return Dominators { idom };
        }
        let rpo = cfg.rpo();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.0 as usize] = i;
        }
        let entry = cfg.entry();
        idom[entry.0 as usize] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_pos[a.0 as usize] > rpo_pos[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while rpo_pos[b.0 as usize] > rpo_pos[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &(p, _) in cfg.preds(b) {
                    if idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`b` itself for the entry; `None`
    /// for unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks of the loop, header included.
    pub body: BTreeSet<BlockId>,
    /// Sources of the back edges into the header.
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Finds the natural loops of a CFG: one per header, bodies merged across
/// that header's back edges, sorted by header id.
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let doms = Dominators::new(cfg);
    let mut by_header: std::collections::BTreeMap<BlockId, NaturalLoop> = Default::default();
    for &(u, h) in cfg.back_edges() {
        // A natural loop requires the header to dominate the latch;
        // DFS back edges into non-dominating targets are irreducible and
        // skipped.
        if !doms.dominates(h, u) {
            continue;
        }
        let entry = by_header.entry(h).or_insert_with(|| NaturalLoop {
            header: h,
            body: [h].into_iter().collect(),
            latches: Vec::new(),
        });
        entry.latches.push(u);
        // Body = reverse reachability from the latch, stopping at the
        // header.
        let mut work = vec![u];
        while let Some(b) = work.pop() {
            if entry.body.insert(b) {
                for &(p, _) in cfg.preds(b) {
                    work.push(p);
                }
            }
        }
    }
    by_header.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::Program;
    use vp_isa::{Cond, FuncId, Reg, Src};

    fn nested_loops_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let (i, j, acc) = (Reg::int(20), Reg::int(21), Reg::int(22));
            f.li(acc, 0);
            f.for_range(i, 0, 5, |f| {
                f.for_range(j, 0, 3, |f| {
                    f.add(acc, acc, j);
                });
            });
            f.halt();
        });
        pb.build()
    }

    #[test]
    fn entry_dominates_everything() {
        let p = nested_loops_program();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let doms = Dominators::new(&cfg);
        for &b in cfg.rpo() {
            assert!(doms.dominates(cfg.entry(), b));
        }
        assert_eq!(doms.idom(cfg.entry()), Some(cfg.entry()));
    }

    #[test]
    fn finds_both_nested_loops() {
        let p = nested_loops_program();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 2, "outer and inner loop");
        // The inner loop is strictly contained in the outer.
        let (a, b) = (&loops[0], &loops[1]);
        let (outer, inner) = if a.body.len() > b.body.len() {
            (a, b)
        } else {
            (b, a)
        };
        assert!(inner.body.iter().all(|blk| outer.contains(*blk)));
        assert!(outer.body.len() > inner.body.len());
        for l in &loops {
            assert!(!l.latches.is_empty());
            let doms = Dominators::new(&cfg);
            for &blk in &l.body {
                assert!(doms.dominates(l.header, blk), "header dominates body");
            }
        }
    }

    #[test]
    fn diamond_has_no_loops() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(20);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.nop(), |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let cfg = Cfg::new(p.func(FuncId(0)));
        assert!(natural_loops(&cfg).is_empty());
    }

    #[test]
    fn idom_of_join_is_branch_block() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", |f| {
            let r = Reg::int(20);
            f.li(r, 1);
            let c = f.cond(Cond::Eq, r, Src::Imm(1));
            f.if_else(c, |f| f.nop(), |f| f.nop());
            f.halt();
        });
        let p = pb.build();
        let f = p.func(FuncId(0));
        let cfg = Cfg::new(f);
        let doms = Dominators::new(&cfg);
        // Block 0 branches to 1/2 joining at 3: idom(3) = 0.
        assert_eq!(doms.idom(BlockId(3)), Some(BlockId(0)));
    }
}
