//! Per-function control-flow graph queries: predecessors, reverse postorder,
//! back edges, and reachability.
//!
//! Root-function and entry-block identification in the paper (Section 3.3.2)
//! both work "ignoring back edges"; the back-edge classification here is the
//! DFS definition (an edge to a block currently on the DFS stack).

use crate::block::EdgeKind;
use crate::func::Function;
use vp_isa::BlockId;

/// Control-flow-graph summary for one function.
///
/// Construction is O(blocks + edges); all queries are precomputed.
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: BlockId,
    succs: Vec<Vec<(BlockId, EdgeKind)>>,
    preds: Vec<Vec<(BlockId, EdgeKind)>>,
    rpo: Vec<BlockId>,
    back_edges: Vec<(BlockId, BlockId)>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG for `f`, exploring from the function entry.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<(BlockId, EdgeKind)>> = vec![Vec::new(); n];
        for (bid, _) in f.blocks_iter() {
            let ss = f.successors(bid);
            for &(t, kind) in &ss {
                preds[t.0 as usize].push((bid, kind));
            }
            succs[bid.0 as usize] = ss;
        }

        // Iterative DFS from the entry computing postorder, back edges and
        // reachability.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut back_edges = Vec::new();
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        if n > 0 {
            stack.push((f.entry, 0));
            state[f.entry.0 as usize] = 1;
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let bs = &succs[b.0 as usize];
            if *i < bs.len() {
                let (t, _) = bs[*i];
                *i += 1;
                match state[t.0 as usize] {
                    0 => {
                        state[t.0 as usize] = 1;
                        stack.push((t, 0));
                    }
                    1 => back_edges.push((b, t)),
                    _ => {}
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let reachable: Vec<bool> = state.iter().map(|&s| s == 2).collect();
        post.reverse();
        Cfg {
            entry: f.entry,
            succs,
            preds,
            rpo: post,
            back_edges,
            reachable,
        }
    }

    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor edges of `b`.
    pub fn succs(&self, b: BlockId) -> &[(BlockId, EdgeKind)] {
        &self.succs[b.0 as usize]
    }

    /// Predecessor edges of `b` (edge kind is the kind at the predecessor's
    /// terminator).
    pub fn preds(&self, b: BlockId) -> &[(BlockId, EdgeKind)] {
        &self.preds[b.0 as usize]
    }

    /// Blocks reachable from the entry in reverse postorder.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// DFS back edges `(from, to)` among blocks reachable from the entry.
    pub fn back_edges(&self) -> &[(BlockId, BlockId)] {
        &self.back_edges
    }

    /// Whether `edge` is a DFS back edge.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.back_edges.contains(&(from, to))
    }

    /// Whether `b` is reachable from the function entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable[b.0 as usize]
    }

    /// Predecessors of `b` excluding back edges: the notion used when
    /// selecting entry blocks (Section 3.3.2).
    pub fn forward_preds(&self, b: BlockId) -> Vec<(BlockId, EdgeKind)> {
        self.preds(b)
            .iter()
            .copied()
            .filter(|&(p, _)| !self.is_back_edge(p, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Terminator};
    use vp_isa::{CodeRef, Cond, Reg, Src};

    /// Builds a diamond with a loop back edge:
    /// b0 -> b1 / b2; b1 -> b3; b2 -> b3; b3 -> b0 (back) or b4 (exit).
    fn diamond_loop() -> Function {
        let mut f = Function::new("f");
        let br = |taken: u32, not_taken: u32| Terminator::Br {
            cond: Cond::Eq,
            rs1: Reg::int(3),
            rs2: Src::Imm(0),
            taken: CodeRef::new(0, taken),
            not_taken: CodeRef::new(0, not_taken),
        };
        f.push_block(Block::empty(br(1, 2))); // b0
        f.push_block(Block::empty(Terminator::Goto(CodeRef::new(0, 3)))); // b1
        f.push_block(Block::empty(Terminator::Goto(CodeRef::new(0, 3)))); // b2
        f.push_block(Block::empty(br(0, 4))); // b3
        f.push_block(Block::empty(Terminator::Halt)); // b4
        f
    }

    #[test]
    fn preds_and_succs_consistent() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        // b0 has one predecessor: the back edge from b3.
        assert_eq!(cfg.preds(BlockId(0)).len(), 1);
    }

    #[test]
    fn back_edge_detected_and_forward_preds_exclude_it() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_back_edge(BlockId(3), BlockId(0)));
        assert!(cfg.forward_preds(BlockId(0)).is_empty());
        assert_eq!(cfg.forward_preds(BlockId(3)).len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 5);
        assert!(cfg.is_reachable(BlockId(4)));
    }

    #[test]
    fn unreachable_block_flagged() {
        let mut f = diamond_loop();
        f.push_block(Block::empty(Terminator::Halt)); // b5, unreachable
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(BlockId(5)));
        assert_eq!(cfg.rpo().len(), 5);
    }

    #[test]
    fn rpo_respects_topological_order_on_dag_part() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        let pos: Vec<usize> = (0..5)
            .map(|i| cfg.rpo().iter().position(|b| b.0 == i).unwrap())
            .collect();
        assert!(pos[0] < pos[1]);
        assert!(pos[0] < pos[2]);
        assert!(pos[1] < pos[3]);
        assert!(pos[2] < pos[3]);
        assert!(pos[3] < pos[4]);
    }
}
