//! Binary layout: assigns code addresses and chooses terminator encodings.
//!
//! A post-link optimizer's relayout pass pays off through exactly the
//! mechanics modeled here: a `Goto` whose target is laid out next costs zero
//! instructions, a conditional branch whose hot successor falls through
//! avoids a fetch redirect, and a branch with neither successor adjacent
//! needs a branch *plus* a jump. Code-expansion numbers (paper Table 3) and
//! fetch behavior in `vp-sim` are both computed from an encoded layout.

use crate::block::Terminator;
use crate::Program;
use std::collections::HashMap;
use vp_isa::{BlockId, CodeRef, FuncId, INST_BYTES};

/// Default base address of the code image.
pub const CODE_BASE: u64 = 0x0001_0000;

/// The order in which functions and blocks are emitted.
#[derive(Debug, Clone)]
pub struct LayoutOrder {
    /// Function emission order; must contain every function exactly once.
    pub funcs: Vec<FuncId>,
    /// Per-function block emission order, indexed by `FuncId`; each inner
    /// vector must contain every block of that function exactly once.
    pub blocks: Vec<Vec<BlockId>>,
}

impl LayoutOrder {
    /// The natural order: functions and blocks by ascending id.
    pub fn natural(p: &Program) -> LayoutOrder {
        LayoutOrder {
            funcs: (0..p.funcs.len() as u32).map(FuncId).collect(),
            blocks: p.funcs.iter().map(|f| f.block_ids().collect()).collect(),
        }
    }

    /// Replaces the block order of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the function's blocks
    /// (checked at [`Layout::new`] time).
    pub fn set_block_order(&mut self, f: FuncId, order: Vec<BlockId>) {
        self.blocks[f.0 as usize] = order;
    }
}

/// How a terminator is encoded at its layout position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermEncoding {
    /// `Goto` to the next block: encoded as nothing.
    Fallthrough,
    /// `Goto` elsewhere: one jump instruction.
    Jump,
    /// Conditional branch with the not-taken successor next: one branch.
    BrFall,
    /// Conditional branch with the taken successor next: one branch with the
    /// condition inverted, so the architectural taken direction falls
    /// through.
    BrInverted,
    /// Conditional branch with neither successor next: branch plus jump.
    BrJump,
    /// One call instruction.
    Call,
    /// One return instruction.
    Ret,
    /// One halt instruction.
    Halt,
}

impl TermEncoding {
    /// Number of instruction slots this encoding occupies.
    pub fn insts(self) -> u64 {
        match self {
            TermEncoding::Fallthrough => 0,
            TermEncoding::BrJump => 2,
            _ => 1,
        }
    }
}

/// An assigned layout: addresses, sizes and terminator encodings.
#[derive(Debug, Clone)]
pub struct Layout {
    base: u64,
    block_addr: Vec<Vec<u64>>,
    block_insts: Vec<Vec<u64>>,
    encoding: Vec<Vec<TermEncoding>>,
    branch_index: HashMap<u64, CodeRef>,
    func_range: Vec<(u64, u64)>,
    total_insts: u64,
    end: u64,
}

impl Layout {
    /// Lays out `p` in the given order starting at [`CODE_BASE`].
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a complete permutation of `p`'s functions
    /// and blocks.
    pub fn new(p: &Program, order: &LayoutOrder) -> Layout {
        assert_eq!(
            order.funcs.len(),
            p.funcs.len(),
            "layout must order every function"
        );
        let mut block_addr: Vec<Vec<u64>> =
            p.funcs.iter().map(|f| vec![0; f.blocks.len()]).collect();
        let mut block_insts: Vec<Vec<u64>> =
            p.funcs.iter().map(|f| vec![0; f.blocks.len()]).collect();
        let mut encoding: Vec<Vec<TermEncoding>> = p
            .funcs
            .iter()
            .map(|f| vec![TermEncoding::Halt; f.blocks.len()])
            .collect();
        let mut func_range = vec![(0u64, 0u64); p.funcs.len()];
        let mut branch_index = HashMap::new();

        let mut addr = CODE_BASE;
        let mut total_insts = 0u64;
        for &fid in &order.funcs {
            let f = p.func(fid);
            let blocks = &order.blocks[fid.0 as usize];
            assert_eq!(
                blocks.len(),
                f.blocks.len(),
                "layout must order every block of {fid}"
            );
            let mut seen = vec![false; f.blocks.len()];
            for &b in blocks {
                assert!(
                    !std::mem::replace(&mut seen[b.0 as usize], true),
                    "duplicate block {b}"
                );
            }
            let func_start = addr;
            for (pos, &b) in blocks.iter().enumerate() {
                let next = blocks.get(pos + 1).map(|&nb| CodeRef {
                    func: fid,
                    block: nb,
                });
                let block = f.block(b);
                let enc = encode(&block.term, next);
                let insts = block.insts.len() as u64 + enc.insts();
                block_addr[fid.0 as usize][b.0 as usize] = addr;
                block_insts[fid.0 as usize][b.0 as usize] = insts;
                encoding[fid.0 as usize][b.0 as usize] = enc;
                if block.term.is_cond_branch() {
                    // The branch is the first terminator slot.
                    let br = addr + block.insts.len() as u64 * INST_BYTES;
                    branch_index.insert(
                        br,
                        CodeRef {
                            func: fid,
                            block: b,
                        },
                    );
                }
                addr += insts * INST_BYTES;
                total_insts += insts;
            }
            func_range[fid.0 as usize] = (func_start, addr);
        }
        Layout {
            base: CODE_BASE,
            block_addr,
            block_insts,
            encoding,
            branch_index,
            func_range,
            total_insts,
            end: addr,
        }
    }

    /// Lays out `p` in natural order.
    pub fn natural(p: &Program) -> Layout {
        Layout::new(p, &LayoutOrder::natural(p))
    }

    /// First code address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last code address.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Address of the first instruction of `b`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn addr_of(&self, b: CodeRef) -> u64 {
        self.block_addr[b.func.0 as usize][b.block.0 as usize]
    }

    /// Number of encoded instruction slots in `b` (straight-line
    /// instructions plus the terminator encoding).
    pub fn insts_of(&self, b: CodeRef) -> u64 {
        self.block_insts[b.func.0 as usize][b.block.0 as usize]
    }

    /// Encoding chosen for `b`'s terminator.
    pub fn encoding(&self, b: CodeRef) -> TermEncoding {
        self.encoding[b.func.0 as usize][b.block.0 as usize]
    }

    /// Address of the conditional-branch instruction ending `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not end in a conditional branch.
    pub fn branch_addr(&self, b: CodeRef) -> u64 {
        let base = self.addr_of(b);
        let block_insts = self.insts_of(b);
        let enc = self.encoding(b);
        assert!(
            matches!(
                enc,
                TermEncoding::BrFall | TermEncoding::BrInverted | TermEncoding::BrJump
            ),
            "{b} does not end in a conditional branch"
        );
        base + (block_insts - enc.insts()) * INST_BYTES
    }

    /// Maps a branch address back to its block — what the software side of
    /// the profiler does when it combines BBB records with the binary.
    pub fn branch_at(&self, addr: u64) -> Option<CodeRef> {
        self.branch_index.get(&addr).copied()
    }

    /// Address range `[start, end)` of a function's code.
    pub fn func_range(&self, f: FuncId) -> (u64, u64) {
        self.func_range[f.0 as usize]
    }

    /// Total encoded instruction slots in the image — the "static
    /// instructions" of the paper's Table 3.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// Total code bytes.
    pub fn total_bytes(&self) -> u64 {
        self.end - self.base
    }
}

fn encode(term: &Terminator, next: Option<CodeRef>) -> TermEncoding {
    match term {
        Terminator::Goto(t) => {
            if Some(*t) == next {
                TermEncoding::Fallthrough
            } else {
                TermEncoding::Jump
            }
        }
        Terminator::Br {
            taken, not_taken, ..
        } => {
            if Some(*not_taken) == next {
                TermEncoding::BrFall
            } else if Some(*taken) == next {
                TermEncoding::BrInverted
            } else {
                TermEncoding::BrJump
            }
        }
        Terminator::Call { .. } | Terminator::CallThrough { .. } => TermEncoding::Call,
        Terminator::Ret => TermEncoding::Ret,
        Terminator::Halt => TermEncoding::Halt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Terminator};
    use crate::func::Function;
    use vp_isa::{Cond, Inst, Reg, Src};

    fn two_block_program() -> Program {
        let mut p = Program::default();
        let mut f = Function::new("main");
        f.push_block(Block {
            insts: vec![Inst::Li {
                rd: Reg::int(8),
                imm: 1,
            }],
            term: Terminator::Br {
                cond: Cond::Eq,
                rs1: Reg::int(8),
                rs2: Src::Imm(0),
                taken: CodeRef::new(0, 2),
                not_taken: CodeRef::new(0, 1),
            },
        });
        f.push_block(Block::empty(Terminator::Goto(CodeRef::new(0, 2))));
        f.push_block(Block::empty(Terminator::Halt));
        p.push_func(f);
        p
    }

    #[test]
    fn natural_layout_uses_fallthrough() {
        let p = two_block_program();
        let l = Layout::natural(&p);
        assert_eq!(l.encoding(CodeRef::new(0, 0)), TermEncoding::BrFall);
        assert_eq!(l.encoding(CodeRef::new(0, 1)), TermEncoding::Fallthrough);
        assert_eq!(l.encoding(CodeRef::new(0, 2)), TermEncoding::Halt);
        // b0: li + br = 2 slots; b1: 0 slots; b2: 1 slot.
        assert_eq!(l.total_insts(), 3);
        assert_eq!(l.addr_of(CodeRef::new(0, 1)), CODE_BASE + 8);
        assert_eq!(l.addr_of(CodeRef::new(0, 2)), CODE_BASE + 8);
    }

    #[test]
    fn reordered_layout_inverts_branch() {
        let p = two_block_program();
        let mut order = LayoutOrder::natural(&p);
        order.set_block_order(FuncId(0), vec![BlockId(0), BlockId(2), BlockId(1)]);
        let l = Layout::new(&p, &order);
        // Now the taken successor (b2) is next: branch is inverted.
        assert_eq!(l.encoding(CodeRef::new(0, 0)), TermEncoding::BrInverted);
        // b1's goto to b2 can no longer fall through.
        assert_eq!(l.encoding(CodeRef::new(0, 1)), TermEncoding::Jump);
        assert_eq!(l.total_insts(), 4);
    }

    #[test]
    fn branch_addresses_map_back_to_blocks() {
        let p = two_block_program();
        let l = Layout::natural(&p);
        let br = l.branch_addr(CodeRef::new(0, 0));
        assert_eq!(br, CODE_BASE + 4);
        assert_eq!(l.branch_at(br), Some(CodeRef::new(0, 0)));
        assert_eq!(l.branch_at(br + 4), None);
    }

    #[test]
    fn func_ranges_are_contiguous() {
        let mut p = two_block_program();
        let mut g = Function::new("g");
        g.push_block(Block::empty(Terminator::Ret));
        p.push_func(g);
        let l = Layout::natural(&p);
        let (s0, e0) = l.func_range(FuncId(0));
        let (s1, e1) = l.func_range(FuncId(1));
        assert_eq!(e0, s1);
        assert_eq!(e1 - s0, l.total_bytes());
    }

    #[test]
    #[should_panic]
    fn incomplete_block_order_panics() {
        let p = two_block_program();
        let mut order = LayoutOrder::natural(&p);
        order.set_block_order(FuncId(0), vec![BlockId(0)]);
        Layout::new(&p, &order);
    }

    #[test]
    fn branch_plus_jump_when_no_successor_adjacent() {
        let p = two_block_program();
        let mut order = LayoutOrder::natural(&p);
        // Branch block last: neither successor can fall through.
        order.set_block_order(FuncId(0), vec![BlockId(1), BlockId(2), BlockId(0)]);
        let l = Layout::new(&p, &order);
        assert_eq!(l.encoding(CodeRef::new(0, 0)), TermEncoding::BrJump);
        assert_eq!(l.insts_of(CodeRef::new(0, 0)), 3);
    }
}
