//! # vp-program
//!
//! The program model the Vacuum Packing algorithms operate on: functions
//! made of basic blocks with explicit terminators, a per-function
//! control-flow graph, a whole-program call graph, register liveness, and a
//! binary layout that assigns addresses exactly the way a post-link
//! rewriter would.
//!
//! The paper's pipeline consumes IMPACT-compiled binaries; this crate is the
//! equivalent substrate. Basic blocks follow the paper's Section 3.2.1
//! discipline: *"each block contains no more than one branch or subroutine
//! call, which is always the last instruction in the block"* — enforced here
//! by construction, because control flow lives in [`Terminator`] rather than
//! in the instruction list.
//!
//! ```
//! use vp_program::ProgramBuilder;
//! use vp_isa::Reg;
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main");
//! pb.define(main, |f| {
//!     f.li(Reg::int(8), 3);
//!     f.halt();
//! });
//! let program = pb.build();
//! assert_eq!(program.funcs.len(), 1);
//! program.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod func;
pub mod layout;
pub mod liveness;
pub mod loops;
pub mod pretty;

pub use block::{Block, EdgeKind, Terminator};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use func::{FuncKind, Function};
pub use layout::{Layout, LayoutOrder, TermEncoding};
pub use liveness::Liveness;

use vp_isa::{BlockId, CodeRef, FuncId};

/// An initialized region of data memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Byte address of the first word (must be 8-byte aligned).
    pub base: u64,
    /// Initial 64-bit word values.
    pub words: Vec<u64>,
}

impl DataSegment {
    /// Byte address one past the end of the segment.
    pub fn end(&self) -> u64 {
        self.base + 8 * self.words.len() as u64
    }
}

/// A whole program: functions plus initialized data.
///
/// The same type represents both the original binary and the rewritten
/// binary that carries extracted packages; package functions are
/// distinguished by [`FuncKind`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All functions; `FuncId` indexes into this vector.
    pub funcs: Vec<Function>,
    /// The function where execution starts.
    pub entry: FuncId,
    /// Initialized data segments.
    pub data: Vec<DataSegment>,
}

/// Error produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The program has no functions.
    Empty,
    /// The entry function id is out of range.
    BadEntry(FuncId),
    /// A function's entry block id is out of range.
    BadFuncEntry(FuncId, BlockId),
    /// A terminator references a nonexistent function.
    BadFuncRef {
        /// Location of the offending terminator.
        from: CodeRef,
        /// The nonexistent function.
        to: FuncId,
    },
    /// A terminator references a nonexistent block.
    BadBlockRef {
        /// Location of the offending terminator.
        from: CodeRef,
        /// The nonexistent target.
        to: CodeRef,
    },
    /// An original (non-package) function branches into another original
    /// function.
    CrossFuncBranch {
        /// Location of the offending terminator.
        from: CodeRef,
        /// The cross-function target.
        to: CodeRef,
    },
    /// A data segment has a misaligned base address.
    MisalignedData(u64),
    /// Two data segments overlap.
    OverlappingData(u64, u64),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Empty => write!(f, "program has no functions"),
            ValidateError::BadEntry(id) => write!(f, "entry function {id} out of range"),
            ValidateError::BadFuncEntry(func, b) => {
                write!(f, "function {func} entry block {b} out of range")
            }
            ValidateError::BadFuncRef { from, to } => {
                write!(f, "terminator at {from} calls nonexistent function {to}")
            }
            ValidateError::BadBlockRef { from, to } => {
                write!(f, "terminator at {from} targets nonexistent block {to}")
            }
            ValidateError::CrossFuncBranch { from, to } => {
                write!(
                    f,
                    "original function branches across functions: {from} -> {to}"
                )
            }
            ValidateError::MisalignedData(a) => write!(f, "data segment base {a:#x} misaligned"),
            ValidateError::OverlappingData(a, b) => {
                write!(f, "data segments at {a:#x} and {b:#x} overlap")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Looks up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable function lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Looks up a block by global code reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn block(&self, r: CodeRef) -> &Block {
        self.func(r.func).block(r.block)
    }

    /// Appends a function, returning its id.
    pub fn push_func(&mut self, mut f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        f.id = id;
        self.funcs.push(f);
        id
    }

    /// Total number of static instructions, counting each terminator at its
    /// address-independent cost of one control instruction (the layout may
    /// later encode a `Goto` in zero instructions or a two-target branch in
    /// two).
    pub fn static_insts(&self) -> u64 {
        self.funcs.iter().map(|f| f.static_insts()).sum()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see [`ValidateError`].
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.funcs.is_empty() {
            return Err(ValidateError::Empty);
        }
        if self.entry.0 as usize >= self.funcs.len() {
            return Err(ValidateError::BadEntry(self.entry));
        }
        for f in &self.funcs {
            if f.entry.0 as usize >= f.blocks.len() {
                return Err(ValidateError::BadFuncEntry(f.id, f.entry));
            }
            for (bid, block) in f.blocks_iter() {
                let from = CodeRef {
                    func: f.id,
                    block: bid,
                };
                for target in block.term.code_targets() {
                    let Some(tf) = self.funcs.get(target.func.0 as usize) else {
                        return Err(ValidateError::BadFuncRef {
                            from,
                            to: target.func,
                        });
                    };
                    if target.block.0 as usize >= tf.blocks.len() {
                        return Err(ValidateError::BadBlockRef { from, to: target });
                    }
                    // Original code may branch into package functions
                    // (patched launch points) but never into other
                    // original functions; packages may branch anywhere
                    // (exits back to original code, inter-package links).
                    if target.func != f.id
                        && f.kind == FuncKind::Original
                        && tf.kind == FuncKind::Original
                    {
                        return Err(ValidateError::CrossFuncBranch { from, to: target });
                    }
                }
                match block.term {
                    Terminator::Call { callee, ret_to } => {
                        if callee.0 as usize >= self.funcs.len() {
                            return Err(ValidateError::BadFuncRef { from, to: callee });
                        }
                        if ret_to.0 as usize >= f.blocks.len() {
                            return Err(ValidateError::BadBlockRef {
                                from,
                                to: CodeRef {
                                    func: f.id,
                                    block: ret_to,
                                },
                            });
                        }
                    }
                    Terminator::CallThrough { target, ret_to } => {
                        if f.kind == FuncKind::Original {
                            return Err(ValidateError::CrossFuncBranch { from, to: target });
                        }
                        if ret_to.0 as usize >= f.blocks.len() {
                            return Err(ValidateError::BadBlockRef {
                                from,
                                to: CodeRef {
                                    func: f.id,
                                    block: ret_to,
                                },
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut segs: Vec<(u64, u64)> = self.data.iter().map(|s| (s.base, s.end())).collect();
        segs.sort_unstable();
        for (i, &(base, end)) in segs.iter().enumerate() {
            if base % 8 != 0 {
                return Err(ValidateError::MisalignedData(base));
            }
            if i + 1 < segs.len() && end > segs[i + 1].0 {
                return Err(ValidateError::OverlappingData(base, segs[i + 1].0));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Terminator;
    use crate::func::{FuncKind, Function};

    fn leaf_func(name: &str) -> Function {
        let mut f = Function::new(name);
        f.push_block(Block {
            insts: vec![],
            term: Terminator::Halt,
        });
        f
    }

    #[test]
    fn empty_program_invalid() {
        assert_eq!(Program::default().validate(), Err(ValidateError::Empty));
    }

    #[test]
    fn minimal_program_valid() {
        let mut p = Program::default();
        p.push_func(leaf_func("main"));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn bad_entry_detected() {
        let mut p = Program::default();
        p.push_func(leaf_func("main"));
        p.entry = FuncId(5);
        assert_eq!(p.validate(), Err(ValidateError::BadEntry(FuncId(5))));
    }

    #[test]
    fn cross_function_branch_rejected_for_original_code() {
        let mut p = Program::default();
        let mut f = Function::new("a");
        f.push_block(Block {
            insts: vec![],
            term: Terminator::Goto(CodeRef::new(1, 0)),
        });
        p.push_func(f);
        p.push_func(leaf_func("b"));
        assert!(matches!(
            p.validate(),
            Err(ValidateError::CrossFuncBranch { .. })
        ));
    }

    #[test]
    fn cross_function_branch_allowed_for_packages() {
        let mut p = Program::default();
        let mut f = Function::new("pkg");
        f.kind = FuncKind::Package { phase: 0 };
        f.push_block(Block {
            insts: vec![],
            term: Terminator::Goto(CodeRef::new(1, 0)),
        });
        p.push_func(f);
        p.push_func(leaf_func("b"));
        p.entry = FuncId(1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn overlapping_data_rejected() {
        let mut p = Program::default();
        p.push_func(leaf_func("main"));
        p.data.push(DataSegment {
            base: 0x1000,
            words: vec![0; 4],
        });
        p.data.push(DataSegment {
            base: 0x1010,
            words: vec![0; 4],
        });
        assert!(matches!(
            p.validate(),
            Err(ValidateError::OverlappingData(..))
        ));
    }
}
