//! Basic blocks and terminators.

use vp_isa::{BlockId, CodeRef, Cond, FuncId, Inst, Reg, Src};

/// How a basic block ends.
///
/// Keeping control flow out of the instruction list enforces the paper's
/// block discipline and lets [`crate::Layout`] choose the cheapest encoding
/// (fall-through, single branch, inverted branch, or branch-plus-jump) after
/// relayout — the same freedom a binary rewriter has.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional transfer. Encoded as zero instructions when the target
    /// is laid out immediately after this block.
    Goto(CodeRef),
    /// Conditional branch comparing `rs1` against `rs2`.
    Br {
        /// Comparison performed.
        cond: Cond,
        /// Left comparison operand.
        rs1: Reg,
        /// Right comparison operand.
        rs2: Src,
        /// Successor when the condition holds (the *architectural* taken
        /// direction — profile records use this orientation regardless of
        /// how layout encodes the branch).
        taken: CodeRef,
        /// Successor when the condition does not hold.
        not_taken: CodeRef,
    },
    /// Subroutine call; execution continues at `ret_to` (in the same
    /// function) after the callee returns.
    Call {
        /// Called function.
        callee: FuncId,
        /// Continuation block in the calling function.
        ret_to: BlockId,
    },
    /// A call that enters at an arbitrary code location — the "push return
    /// address, then jump" idiom binary rewriters use. Package exit stubs
    /// use it to reconstruct the calling context that partial inlining
    /// elided: control leaves an inlined region into the middle of the
    /// original callee, and the callee's eventual `Ret` must find the
    /// continuation the inlined call site would have pushed. Only package
    /// functions may use it (enforced by [`crate::Program::validate`]).
    CallThrough {
        /// Code location control transfers to.
        target: CodeRef,
        /// Continuation block (in this function) pushed as the return
        /// address.
        ret_to: BlockId,
    },
    /// Return to the dynamic caller.
    Ret,
    /// Stop the program.
    Halt,
}

impl Terminator {
    /// All code targets this terminator can transfer to, excluding call and
    /// return targets (which are inter-procedural).
    pub fn code_targets(&self) -> Vec<CodeRef> {
        match self {
            Terminator::Goto(t) => vec![*t],
            Terminator::Br {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::CallThrough { target, .. } => vec![*target],
            Terminator::Call { .. } | Terminator::Ret | Terminator::Halt => vec![],
        }
    }

    /// Registers read when evaluating this terminator. Calls conservatively
    /// read the argument registers and the stack pointer; returns read the
    /// return-value register (software convention, documented in
    /// [`crate::liveness`]).
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Goto(_) | Terminator::Halt => vec![],
            Terminator::Br { rs1, rs2, .. } => {
                let mut v = Vec::with_capacity(2);
                if !rs1.is_zero() {
                    v.push(*rs1);
                }
                if let Src::Reg(r) = rs2 {
                    if !r.is_zero() {
                        v.push(*r);
                    }
                }
                v
            }
            Terminator::Call { .. } | Terminator::CallThrough { .. } => {
                let mut v: Vec<Reg> = (0..8).map(Reg::arg).collect();
                v.push(Reg::SP);
                v
            }
            Terminator::Ret => vec![Reg::ARG0, Reg::SP],
        }
    }

    /// Registers conservatively treated as written by this terminator
    /// (calls clobber the return-value register).
    pub fn defs(&self) -> Vec<Reg> {
        match self {
            Terminator::Call { .. } | Terminator::CallThrough { .. } => vec![Reg::ARG0],
            _ => vec![],
        }
    }

    /// Whether this terminator is a conditional branch (the only kind the
    /// Branch Behavior Buffer profiles).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Terminator::Br { .. })
    }
}

/// The kind of control-flow edge between two blocks of one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Taken direction of a conditional branch.
    Taken,
    /// Fall-through direction of a conditional branch.
    NotTaken,
    /// Unconditional transfer.
    Goto,
    /// Continuation after a call returns.
    CallCont,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Non-control instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The single control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// A block holding only a terminator.
    pub fn empty(term: Terminator) -> Block {
        Block {
            insts: vec![],
            term,
        }
    }

    /// Intra-function successor edges (call continuations included,
    /// cross-function goto/branch targets excluded).
    pub fn successors(&self, here: FuncId) -> Vec<(BlockId, EdgeKind)> {
        match &self.term {
            Terminator::Goto(t) if t.func == here => vec![(t.block, EdgeKind::Goto)],
            Terminator::Goto(_) => vec![],
            Terminator::Br {
                taken, not_taken, ..
            } => {
                let mut v = Vec::with_capacity(2);
                if taken.func == here {
                    v.push((taken.block, EdgeKind::Taken));
                }
                if not_taken.func == here {
                    v.push((not_taken.block, EdgeKind::NotTaken));
                }
                v
            }
            Terminator::Call { ret_to, .. } | Terminator::CallThrough { ret_to, .. } => {
                vec![(*ret_to, EdgeKind::CallCont)]
            }
            Terminator::Ret | Terminator::Halt => vec![],
        }
    }

    /// Static instruction count with the terminator at unit cost.
    pub fn static_insts(&self) -> u64 {
        self.insts.len() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn br_successors_both_directions() {
        let b = Block::empty(Terminator::Br {
            cond: Cond::Eq,
            rs1: Reg::int(3),
            rs2: Src::Imm(0),
            taken: CodeRef::new(0, 1),
            not_taken: CodeRef::new(0, 2),
        });
        let succ = b.successors(FuncId(0));
        assert_eq!(
            succ,
            vec![
                (BlockId(1), EdgeKind::Taken),
                (BlockId(2), EdgeKind::NotTaken)
            ]
        );
    }

    #[test]
    fn cross_function_goto_not_an_intra_edge() {
        let b = Block::empty(Terminator::Goto(CodeRef::new(7, 0)));
        assert!(b.successors(FuncId(0)).is_empty());
        assert_eq!(b.term.code_targets(), vec![CodeRef::new(7, 0)]);
    }

    #[test]
    fn call_successor_is_continuation() {
        let b = Block::empty(Terminator::Call {
            callee: FuncId(3),
            ret_to: BlockId(9),
        });
        assert_eq!(
            b.successors(FuncId(0)),
            vec![(BlockId(9), EdgeKind::CallCont)]
        );
    }

    #[test]
    fn branch_uses_skip_zero_register() {
        let t = Terminator::Br {
            cond: Cond::Ne,
            rs1: Reg::ZERO,
            rs2: Src::Reg(Reg::int(5)),
            taken: CodeRef::new(0, 1),
            not_taken: CodeRef::new(0, 2),
        };
        assert_eq!(t.uses(), vec![Reg::int(5)]);
    }

    #[test]
    fn ret_uses_return_value_register() {
        assert!(Terminator::Ret.uses().contains(&Reg::ARG0));
    }
}
