//! Whole-program call graph.

use crate::block::Terminator;
use crate::Program;
use std::collections::BTreeSet;
use vp_isa::{BlockId, FuncId};

/// A call site: the calling block and the called function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSite {
    /// Function containing the call.
    pub caller: FuncId,
    /// Block whose terminator is the call.
    pub block: BlockId,
    /// Called function.
    pub callee: FuncId,
}

/// Function-call relationships of a program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<CallSite>>,
    callers: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the call graph of `p`.
    pub fn new(p: &Program) -> CallGraph {
        let n = p.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for f in &p.funcs {
            for (bid, block) in f.blocks_iter() {
                if let Terminator::Call { callee, .. } = block.term {
                    let site = CallSite {
                        caller: f.id,
                        block: bid,
                        callee,
                    };
                    callees[f.id.0 as usize].push(site);
                    callers[callee.0 as usize].push(site);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Call sites inside `f`.
    pub fn calls_from(&self, f: FuncId) -> &[CallSite] {
        &self.callees[f.0 as usize]
    }

    /// Call sites that target `f`.
    pub fn calls_to(&self, f: FuncId) -> &[CallSite] {
        &self.callers[f.0 as usize]
    }

    /// Distinct functions called by `f`.
    pub fn callee_funcs(&self, f: FuncId) -> BTreeSet<FuncId> {
        self.calls_from(f).iter().map(|s| s.callee).collect()
    }

    /// Distinct functions that call `f`.
    pub fn caller_funcs(&self, f: FuncId) -> BTreeSet<FuncId> {
        self.calls_to(f).iter().map(|s| s.caller).collect()
    }

    /// Whether `f` calls itself (directly).
    pub fn is_self_recursive(&self, f: FuncId) -> bool {
        self.calls_from(f).iter().any(|s| s.callee == f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::func::Function;

    fn call_block(callee: u32, ret_to: u32) -> Block {
        Block::empty(Terminator::Call {
            callee: FuncId(callee),
            ret_to: BlockId(ret_to),
        })
    }

    fn program_abc() -> Program {
        // a calls b twice; b calls c; c calls itself.
        let mut p = Program::default();
        let mut a = Function::new("a");
        a.push_block(call_block(1, 1));
        a.push_block(call_block(1, 2));
        a.push_block(Block::empty(Terminator::Halt));
        p.push_func(a);
        let mut b = Function::new("b");
        b.push_block(call_block(2, 1));
        b.push_block(Block::empty(Terminator::Ret));
        p.push_func(b);
        let mut c = Function::new("c");
        c.push_block(call_block(2, 1));
        c.push_block(Block::empty(Terminator::Ret));
        p.push_func(c);
        p
    }

    #[test]
    fn edges_both_directions() {
        let p = program_abc();
        let cg = CallGraph::new(&p);
        assert_eq!(cg.calls_from(FuncId(0)).len(), 2);
        assert_eq!(cg.calls_to(FuncId(1)).len(), 2);
        assert_eq!(
            cg.caller_funcs(FuncId(2)),
            [FuncId(1), FuncId(2)].into_iter().collect()
        );
    }

    #[test]
    fn self_recursion_detected() {
        let p = program_abc();
        let cg = CallGraph::new(&p);
        assert!(cg.is_self_recursive(FuncId(2)));
        assert!(!cg.is_self_recursive(FuncId(1)));
    }

    #[test]
    fn distinct_callee_sets() {
        let p = program_abc();
        let cg = CallGraph::new(&p);
        assert_eq!(cg.callee_funcs(FuncId(0)).len(), 1);
    }
}
