//! Semantics preservation: vacuum packing is a *binary rewriting*
//! transformation — the packed (and optimized) program must compute
//! exactly what the original computed.
//!
//! For several workloads, the original, the packed, and the
//! packed-and-optimized binaries are executed to completion and their
//! final architectural states compared: every general-purpose register and
//! every word of every initialized data segment.

use vacuum_packing::core::pack;
use vacuum_packing::metrics::profile;
use vacuum_packing::opt::optimize_packages;
use vacuum_packing::prelude::*;

/// Runs `program` under `layout` and snapshots the architectural state.
fn run_and_snapshot(program: &Program, layout: &Layout) -> (Vec<u64>, Vec<Vec<u64>>) {
    let mut ex = Executor::new(program, layout);
    let stats = ex
        .run(&mut NullSink, &RunConfig::default())
        .expect("run succeeds");
    assert_eq!(stats.stop, vacuum_packing::exec::StopReason::Halted);
    let regs: Vec<u64> = (0..64).map(|i| ex.reg(Reg::int(i))).collect();
    let mem: Vec<Vec<u64>> = program
        .data
        .iter()
        .map(|seg| {
            (0..seg.words.len())
                .map(|i| ex.memory().read(seg.base + 8 * i as u64))
                .collect()
        })
        .collect();
    (regs, mem)
}

fn assert_equivalent(label: &str, program: Program) {
    let layout = Layout::natural(&program);
    let (regs0, mem0) = run_and_snapshot(&program, &layout);

    // Profile and pack.
    let pw = profile(label, program, &HsdConfig::table2(), None).expect("profile");
    assert!(!pw.phases.is_empty(), "{label}: phases must be detected");
    let out = pack(&pw.program, &pw.layout, &pw.phases, &PackConfig::default());
    assert!(!out.packages.is_empty(), "{label}: packages must be built");

    // Packed, natural layout.
    let packed_layout = Layout::natural(&out.program);
    let (regs1, mem1) = run_and_snapshot(&out.program, &packed_layout);
    assert_eq!(regs0, regs1, "{label}: registers diverged after packing");
    assert_eq!(mem0, mem1, "{label}: memory diverged after packing");

    // Packed + optimized (reschedule + relayout).
    let machine = MachineConfig::table2();
    let (opt_prog, order) = optimize_packages(&out, &machine, &OptConfig::default());
    let opt_layout = Layout::new(&opt_prog, &order);
    let (regs2, mem2) = run_and_snapshot(&opt_prog, &opt_layout);
    assert_eq!(
        regs0, regs2,
        "{label}: registers diverged after optimization"
    );
    assert_eq!(mem0, mem2, "{label}: memory diverged after optimization");

    // Every pass on, including cold-instruction sinking.
    let (full_prog, order) = optimize_packages(&out, &machine, &OptConfig::full());
    let full_layout = Layout::new(&full_prog, &order);
    let (regs3, mem3) = run_and_snapshot(&full_prog, &full_layout);
    assert_eq!(
        regs0, regs3,
        "{label}: registers diverged after cold sinking"
    );
    assert_eq!(mem0, mem3, "{label}: memory diverged after cold sinking");
}

#[test]
fn weak_caller_interpreter_is_preserved() {
    // 130.li A exits from *inlined* eval_expr code into the original
    // callee: the frame-reconstruction stubs must make the callee's
    // return land back in the middle of the original caller.
    assert_equivalent(
        "130.li A",
        vacuum_packing::workloads::li::build(vacuum_packing::workloads::li::Input::A, 1),
    );
}

#[test]
fn database_with_inlined_probes_is_preserved() {
    // 255.vortex inlines the probe loops into a main-rooted package and
    // exits from deep contexts — the case that exposed the missing-frame
    // bug during development.
    assert_equivalent(
        "255.vortex A",
        vacuum_packing::workloads::vortex::build(vacuum_packing::workloads::vortex::Input::A, 1),
    );
}

#[test]
fn queens_solver_is_preserved() {
    assert_equivalent(
        "130.li B",
        vacuum_packing::workloads::li::build(vacuum_packing::workloads::li::Input::B, 1),
    );
}

#[test]
fn interpreter_is_preserved() {
    assert_equivalent(
        "134.perl C",
        vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::C, 1),
    );
}

#[test]
fn annealer_is_preserved() {
    assert_equivalent("300.twolf A", vacuum_packing::workloads::twolf::build(1));
}

#[test]
fn loader_with_linked_packages_is_preserved() {
    // m88ksim migrates between linked loader packages mid-run: the
    // riskiest control-flow path in the rewriter.
    assert_equivalent(
        "124.m88ksim A",
        vacuum_packing::workloads::m88ksim::build(1),
    );
}

#[test]
fn compression_roundtrip_is_preserved() {
    assert_equivalent("164.gzip A", vacuum_packing::workloads::gzip::build(1));
}
