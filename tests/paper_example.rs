//! The paper's Figure 3 worked example, as an executable test.
//!
//! Two functions in the spirit of the figure: function `A` (blocks
//! A1–A10) with a hot loop calling function `B` (blocks B1–B6). The BBB
//! captured only *half* of the hot branches; the test checks the exact
//! inferences the paper walks through in Section 3.2.4:
//!
//! * "Since A2's branch is strongly not-taken, the flow to A7 is
//!   identified as Cold" — and A7 becomes Cold by Statement 3;
//! * "The flow from A9 to A10 is similarly identified as Cold";
//! * "Since A2 is Hot and is also strongly not-taken, the flow to A3 is
//!   Hot. The temperature of this flow is propagated to block A3 by
//!   Statement 4 even though it was missing from the hot branch profile";
//! * "The fact that B4 is Hot implies that B2 and B6 are Hot (Statements
//!   7 and 4)".

use std::collections::BTreeMap;
use vacuum_packing::core::{build_packages, identify_region, CfgCache, PackConfig, Temp};
use vacuum_packing::hsd::{Phase, PhaseBranch};
use vacuum_packing::prelude::*;
use vacuum_packing::program::{Block, EdgeKind, FuncKind, Function, Terminator};

// Block indices within function A (A1 = index 0, ... A10 = index 9) and B.
#[allow(dead_code)] // keeps the figure's numbering complete
const A1: u32 = 0;
const A2: u32 = 1;
const A3: u32 = 2;
const A4: u32 = 3;
const A5: u32 = 4;
const A6: u32 = 5;
const A7: u32 = 6;
const A8: u32 = 7;
const A9: u32 = 8;
const A10: u32 = 9;
const B1: u32 = 0;
const B2: u32 = 1;
const B3: u32 = 2;
const B4: u32 = 3;
const B5: u32 = 4;
const B6: u32 = 5;

fn br(rs1: Reg, taken: CodeRef, not_taken: CodeRef) -> Terminator {
    Terminator::Br {
        cond: Cond::Eq,
        rs1,
        rs2: Src::Imm(0),
        taken,
        not_taken,
    }
}

/// Builds the example program: function ids — A = 0, B = 1.
fn figure3_program() -> Program {
    let a = |b: u32| CodeRef::new(0, b);
    let bb = |b: u32| CodeRef::new(1, b);
    let r = Reg::int(20);

    let mut fa = Function::new("A");
    fa.kind = FuncKind::Original;
    // A1: entry, unprofiled branch into the loop (or a rare alternative).
    fa.push_block(Block::empty(br(r, a(A2), a(A4))));
    // A2: profiled, strongly not-taken. Taken -> A7 (cold side), fall
    // through -> A3 (hot, but missing from the BBB).
    fa.push_block(Block {
        insts: vec![Inst::Li { rd: r, imm: 1 }],
        term: br(r, a(A7), a(A3)),
    });
    // A3: unprofiled straight-line block on the hot path.
    fa.push_block(Block {
        insts: vec![Inst::Alu {
            op: vacuum_packing::isa::AluOp::Add,
            rd: r,
            rs1: r,
            rs2: Src::Imm(1),
        }],
        term: Terminator::Goto(a(A9)),
    });
    // A4: rare alternative entry path.
    fa.push_block(Block::empty(Terminator::Goto(a(A2))));
    // A5: the hot call to B.
    fa.push_block(Block::empty(Terminator::Call {
        callee: FuncId(1),
        ret_to: BlockId(A6),
    }));
    // A6: loop-back branch, profiled strongly taken.
    fa.push_block(Block::empty(br(r, a(A2), a(A8))));
    // A7: cold side path.
    fa.push_block(Block::empty(Terminator::Goto(a(A10))));
    // A8: function exit.
    fa.push_block(Block::empty(Terminator::Halt));
    // A9: profiled, strongly not-taken; taken -> A10 is the cold flow.
    fa.push_block(Block::empty(br(r, a(A10), a(A5))));
    // A10: cold merge.
    fa.push_block(Block::empty(Terminator::Goto(a(A8))));

    let mut fb = Function::new("B");
    fb.kind = FuncKind::Original;
    // B1: prologue; its branch is missing from the BBB.
    fb.push_block(Block::empty(br(r, bb(B2), bb(B5))));
    // B2: unprofiled body block.
    fb.push_block(Block::empty(Terminator::Goto(bb(B4))));
    // B3: rare retry path back into B4.
    fb.push_block(Block::empty(Terminator::Goto(bb(B4))));
    // B4: the one captured branch of B, strongly taken to B6.
    fb.push_block(Block::empty(br(r, bb(B6), bb(B3))));
    // B5: cold alternative.
    fb.push_block(Block::empty(Terminator::Goto(bb(B6))));
    // B6: epilogue.
    fb.push_block(Block::empty(Terminator::Ret));

    let mut p = Program::default();
    p.push_func(fa);
    p.push_func(fb);
    p.validate().expect("figure 3 program is well-formed");
    p
}

/// The BBB profile: four captured branches (A2, A9, A6, B4) out of the
/// eight branch/call blocks in the hot region — half the information, as
/// in the figure.
fn figure3_phase(layout: &Layout) -> Phase {
    let mut branches = BTreeMap::new();
    let mut add = |bref: CodeRef, exec: u64, taken: u64| {
        branches.insert(layout.branch_addr(bref), PhaseBranch::once(exec, taken));
    };
    add(CodeRef::new(0, A2), 500, 5); // strongly not-taken
    add(CodeRef::new(0, A9), 500, 5); // strongly not-taken
    add(CodeRef::new(0, A6), 500, 495); // loop back, strongly taken
    add(CodeRef::new(1, B4), 500, 495); // strongly taken to the epilogue
    Phase {
        id: 0,
        branches,
        first_detected_at: 0,
        detections: 1,
    }
}

#[test]
fn figure3_inference_matches_the_papers_walkthrough() {
    let p = figure3_program();
    let layout = Layout::natural(&p);
    let phase = figure3_phase(&layout);
    let mut cfgs = CfgCache::new();
    let region = identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default());

    let ma = region.mark(FuncId(0)).expect("A is marked");
    use vacuum_packing::core::ArcKey;

    // "the flow to A7 is identified as Cold"
    assert_eq!(
        ma.arc_temp(ArcKey::new(BlockId(A2), EdgeKind::Taken)),
        Temp::Cold
    );
    // "block A7 must be Cold (Statement 3)"
    assert_eq!(ma.block_temp(BlockId(A7)), Temp::Cold);
    // "The flow from A9 to A10 is similarly identified as Cold"
    assert_eq!(
        ma.arc_temp(ArcKey::new(BlockId(A9), EdgeKind::Taken)),
        Temp::Cold
    );
    // "the flow to A3 is Hot ... propagated to block A3 by Statement 4
    //  even though it was missing from the hot branch profile"
    assert_eq!(
        ma.arc_temp(ArcKey::new(BlockId(A2), EdgeKind::NotTaken)),
        Temp::Hot
    );
    assert_eq!(ma.block_temp(BlockId(A3)), Temp::Hot);
    assert!(!ma.is_profiled(BlockId(A3)));
    // The call block A5 joins the region (it sits between two hot blocks).
    assert_eq!(ma.block_temp(BlockId(A5)), Temp::Hot);

    // "The fact that B4 is Hot implies that B2 and B6 are Hot"
    let mb = region.mark(FuncId(1)).expect("B is marked");
    assert_eq!(mb.block_temp(BlockId(B4)), Temp::Hot);
    assert_eq!(mb.block_temp(BlockId(B2)), Temp::Hot);
    assert_eq!(mb.block_temp(BlockId(B6)), Temp::Hot);
    // The prologue is Hot through the hot call (Statement 9).
    assert_eq!(mb.block_temp(BlockId(B1)), Temp::Hot);
}

#[test]
fn figure3_inference_rule_fire_counts() {
    // The same walkthrough, observed through the tracing layer: each
    // Figure 4 inference rule fires an exact, deterministic number of
    // times on this example.
    let p = figure3_program();
    let layout = Layout::natural(&p);
    let phase = figure3_phase(&layout);
    let (region, report) = vacuum_packing::trace::scoped(|| {
        let mut cfgs = CfgCache::new();
        identify_region(&p, &layout, &mut cfgs, &phase, &PackConfig::default())
    });
    assert!(region.hot_block_count() > 0);

    // The fixpoint converges on the third pass (the second pass derives
    // B's temperatures through the call, the third finds nothing new).
    assert_eq!(report.counter("core.infer.iterations"), 3);
    // Statement 3 (cold arc -> cold block): the A2->A7 and A9->A10 cold
    // flows and their downstream merges.
    assert_eq!(report.counter("core.infer.stmt3"), 4);
    // Statement 4 (hot arc -> hot block): A3 — "propagated ... even
    // though it was missing from the hot branch profile" — plus B's
    // unprofiled hot blocks.
    assert_eq!(report.counter("core.infer.stmt4"), 4);
    assert_eq!(report.counter("core.infer.stmt6"), 3);
    // Statement 7 (single non-cold outgoing arc of a hot block is hot):
    // includes "the fact that B4 is Hot implies B6 is Hot".
    assert_eq!(report.counter("core.infer.stmt7"), 4);
    assert_eq!(report.counter("core.infer.stmt8"), 1);

    // Final temperature census: 9 hot blocks (A2 A3 A5 A6 A9, B1 B2 B4
    // B6 — exactly the paper's hot region), the rest cold or unknown.
    assert_eq!(report.counter("core.region.blocks_hot"), 9);
    assert_eq!(report.counter("core.region.blocks_cold"), 4);
    assert_eq!(report.counter("core.region.blocks_unknown"), 3);
}

#[test]
fn figure3_package_inlines_b_and_excludes_cold_blocks() {
    let p = figure3_program();
    let layout = Layout::natural(&p);
    let phase = figure3_phase(&layout);
    let cfg = PackConfig::default();
    let mut cfgs = CfgCache::new();
    let region = identify_region(&p, &layout, &mut cfgs, &phase, &cfg);
    let packages = build_packages(&p, &mut cfgs, &region, &cfg);

    // One package, rooted at A (no callers in the region).
    assert_eq!(packages.len(), 1, "figure 3 forms a single package");
    let pkg = &packages[0];
    assert_eq!(pkg.root, FuncId(0));

    // B was partially inlined: its hot blocks appear under a non-empty
    // context, and no call to B remains inside the package.
    assert!(pkg
        .meta
        .iter()
        .any(|m| m.origin.func == FuncId(1) && !m.context.is_empty()));
    assert!(!pkg
        .blocks
        .iter()
        .any(|b| matches!(b.term, Terminator::Call { callee, .. } if callee == FuncId(1))));

    // The cold blocks A7 and A10 are not in the package (other than as
    // exit targets).
    for cold in [A7, A10] {
        assert!(
            !pkg.meta
                .iter()
                .any(|m| !m.is_exit && m.origin == CodeRef::new(0, cold)),
            "A{} must be pruned",
            cold + 1
        );
    }
    // And the cold paths exist as exits with dummy consumers.
    assert!(pkg.exits().count() >= 2, "cold flows become exit blocks");
    for (b, _) in pkg.exits() {
        assert!(
            matches!(
                pkg.blocks[b.0 as usize].insts.first(),
                Some(Inst::Consume { .. })
            ),
            "exit blocks carry dummy consumers"
        );
    }

    // Inlined B returns become jumps (no Ret from B's blocks).
    for (i, block) in pkg.blocks.iter().enumerate() {
        if pkg.meta[i].origin.func == FuncId(1) && !pkg.meta[i].is_exit {
            assert!(!matches!(block.term, Terminator::Ret));
        }
    }
}

#[test]
fn figure7_rank_walkthrough() {
    // Section 3.3.4's ordering rank: ratios 2/5, 2/5, 3/6 accumulate to
    // 0.64 (the paper's Figure 7(c) number).
    let ratios = [2.0f64 / 5.0, 2.0 / 5.0, 3.0 / 6.0];
    let mut rank = 0.0;
    let mut weight = 1.0;
    for r in ratios {
        weight *= r;
        rank += weight;
    }
    assert!((rank - 0.64).abs() < 1e-12);
}
