//! The tracing layer observed end-to-end: hardware-detector counters on a
//! deterministic workload, and the manifest/sink plumbing.

use std::sync::Arc;
use vacuum_packing::hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig};
use vacuum_packing::prelude::*;
use vacuum_packing::trace;

/// Runs twolf once with the HSD attached inside a trace scope and checks
/// the detector's counters against its architectural results.
#[test]
fn hsd_counters_match_detector_state() {
    let program = vacuum_packing::workloads::twolf::build(1);
    let layout = Layout::natural(&program);

    let ((records, phases), report) = trace::scoped(|| {
        let mut hsd = HotSpotDetector::new(HsdConfig::table2());
        Executor::new(&program, &layout)
            .run(&mut hsd, &RunConfig::default())
            .expect("twolf runs");
        let records = hsd.records().to_vec();
        let phases = filter_hot_spots(&records, &FilterConfig::default());
        (records, phases)
    });

    // Every record the detector handed to software was counted as a
    // detection, and the filter saw exactly those records.
    assert!(!records.is_empty(), "twolf must trip the detector");
    assert_eq!(report.counter("hsd.detections"), records.len() as u64);
    assert_eq!(report.counter("hsd.filter.records"), records.len() as u64);
    assert_eq!(report.counter("hsd.filter.phases"), phases.len() as u64);
    assert_eq!(
        report.counter("hsd.filter.phases") + report.counter("hsd.filter.merged"),
        records.len() as u64,
        "every record is either a new phase or merged into one"
    );

    // twolf's hot annealing loops run far past the 9-bit exec counters:
    // saturation must be observed.
    assert!(
        report.counter("hsd.counter_saturations") > 0,
        "twolf's loops must saturate the BBB exec counters"
    );
    // The BBB is finite, so insertions happen; the §3.1 split rules fire
    // on twolf's regime changes (its branches flip bias between phases).
    assert!(report.counter("hsd.bbb.insertions") > 0);
    assert!(report.counter("hsd.filter.split.bias_flip") > 0);
    assert!(report.counter("hsd.filter.split.missing") > 0);

    // Determinism: a second identical run reproduces the same counters.
    let (_, report2) = trace::scoped(|| {
        let mut hsd = HotSpotDetector::new(HsdConfig::table2());
        Executor::new(&program, &layout)
            .run(&mut hsd, &RunConfig::default())
            .expect("twolf runs");
        filter_hot_spots(hsd.records(), &FilterConfig::default()).len()
    });
    for key in [
        "hsd.detections",
        "hsd.counter_saturations",
        "hsd.bbb.insertions",
        "hsd.bbb.evictions",
        "hsd.refresh_expiries",
        "hsd.clear_expiries",
        "hsd.filter.records",
        "hsd.filter.phases",
    ] {
        assert_eq!(
            report.counter(key),
            report2.counter(key),
            "{key} must be deterministic"
        );
    }
}

/// A cold stream — every branch address distinct, so nothing ever becomes
/// a candidate — drives the refresh and clear timers instead of the
/// detection path.
#[test]
fn hsd_timers_fire_on_cold_streams() {
    let cfg = HsdConfig::table2();
    let n = 4 * cfg.clear_interval;
    let (detections, report) = trace::scoped(|| {
        let mut hsd = HotSpotDetector::new(cfg);
        for i in 0..n {
            hsd.observe(0x1_0000 + 4 * i, i % 2 == 0);
        }
        hsd.records().len()
    });
    assert_eq!(detections, 0, "a cold stream must not trip the detector");
    assert_eq!(report.counter("hsd.detections"), 0);
    // Timers expire repeatedly over 4 clear intervals; the clear timer
    // resets the refresh timer too, so the exact counts depend only on
    // the (deterministic) interval arithmetic.
    assert!(report.counter("hsd.refresh_expiries") >= 3);
    assert!(report.counter("hsd.clear_expiries") >= 3);
}

/// The executor's counters line up with its own RunStats.
#[test]
fn exec_counters_match_run_stats() {
    let program = vacuum_packing::workloads::twolf::build(1);
    let layout = Layout::natural(&program);
    let (stats, report) = trace::scoped(|| {
        Executor::new(&program, &layout)
            .run(&mut NullSink, &RunConfig::default())
            .expect("twolf runs")
    });
    assert_eq!(report.counter("exec.retired"), stats.retired);
    assert_eq!(report.counter("exec.cond_branches"), stats.cond_branches);
}

/// A memory sink installed for the process receives records and a
/// well-formed manifest line.
#[test]
fn manifest_reaches_installed_sink() {
    let sink = Arc::new(MemorySink::new());
    trace::install(sink.clone());

    {
        let _s = trace::span("test.stage");
        trace::event("test.event", &[("answer", 42u64.into())]);
    }
    let mut mf = Manifest::new("test-bin");
    mf.set("scale", 1u64.into());
    mf.table("t", &["col".to_string()], &[vec!["v".to_string()]]);
    mf.stamp();
    let line = mf.emit();
    trace::finish();

    assert!(
        line.starts_with("{\"t\":\"manifest\""),
        "manifest line: {line}"
    );
    assert!(line.contains("\"schema\":\"vp-manifest/2\""));
    assert!(line.contains("\"duration_ms\""));
    assert!(line.contains("\"bin\":\"test-bin\""));
    assert!(line.contains("\"spans\""));
    assert!(line.contains("test.stage"));
    let manifests = sink.manifests();
    assert_eq!(manifests.len(), 1);
    assert_eq!(manifests[0], line);
    assert!(
        sink.records()
            .iter()
            .any(|r| matches!(r, trace::Record::Event { name, .. } if name == "test.event")),
        "event must reach the sink"
    );
}
