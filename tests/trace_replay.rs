//! Capture/replay equivalence: a replayed [`CapturedTrace`] must be
//! indistinguishable from live execution for every consumer of the retired
//! stream — instruction counts, the Hot Spot Detector, and the timing
//! model — and the [`TraceStore`] cache must degrade to re-execution (not
//! wrong answers) under memory pressure.

use vacuum_packing::hsd::{filter_hot_spots, FilterConfig, HotSpotDetector, HsdConfig};
use vacuum_packing::prelude::*;
use vacuum_packing::trace;
use vp_program::Program;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vptrace-it-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn three_workloads() -> Vec<(&'static str, Program)> {
    vec![
        ("300.twolf", vacuum_packing::workloads::twolf::build(1)),
        ("164.gzip", vacuum_packing::workloads::gzip::build(1)),
        ("124.m88ksim", vacuum_packing::workloads::m88ksim::build(1)),
    ]
}

/// For three real workloads: one live run and one capture+replay must
/// produce *exactly* equal instruction counts, detector records, filtered
/// phases, and baseline cycle counts.
#[test]
fn replay_is_bit_equal_to_live_execution() {
    let cfg = RunConfig::default();
    let machine = MachineConfig::table2();
    for (name, program) in three_workloads() {
        let layout = Layout::natural(&program);

        // Live: interpret the program, fanning out to all three consumers.
        let mut live_hsd = HotSpotDetector::new(HsdConfig::table2());
        let mut live_counts = InstCounts::new();
        let mut live_timing = TimingModel::new(machine);
        let live_stats = Executor::new(&program, &layout)
            .run(
                &mut (&mut live_hsd, &mut live_counts, &mut live_timing),
                &cfg,
            )
            .unwrap_or_else(|e| panic!("{name}: live run failed: {e}"));

        // Replayed: capture once, then feed fresh consumers from the trace.
        let capture = CapturedTrace::capture(&program, &layout, &cfg)
            .unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));
        let mut replay_hsd = HotSpotDetector::new(HsdConfig::table2());
        let mut replay_counts = InstCounts::new();
        let mut replay_timing = TimingModel::new(machine);
        let replay_stats =
            capture.replay(&mut (&mut replay_hsd, &mut replay_counts, &mut replay_timing));

        assert_eq!(live_stats, replay_stats, "{name}: RunStats diverged");
        assert_eq!(live_counts, replay_counts, "{name}: InstCounts diverged");
        assert_eq!(
            live_hsd.records(),
            replay_hsd.records(),
            "{name}: detector records diverged"
        );
        assert_eq!(
            filter_hot_spots(live_hsd.records(), &FilterConfig::default()),
            filter_hot_spots(replay_hsd.records(), &FilterConfig::default()),
            "{name}: filtered phases diverged"
        );
        assert_eq!(
            live_timing.cycles(),
            replay_timing.cycles(),
            "{name}: baseline cycles diverged"
        );
    }
}

/// The encoding stays within its amortized byte budget on a real workload,
/// not just on synthetic loops.
#[test]
fn capture_of_real_workload_is_compact() {
    let program = vacuum_packing::workloads::twolf::build(1);
    let layout = Layout::natural(&program);
    let capture = CapturedTrace::capture(&program, &layout, &RunConfig::default()).unwrap();
    let per_inst = capture.bytes() as f64 / capture.events() as f64;
    assert!(
        per_inst <= 8.0,
        "amortized encoding must stay under 8 B/inst, got {per_inst:.2}"
    );
}

fn loop_program(label: u64, iters: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.func("main", |f| {
        let i = Reg::int(8);
        let a = Reg::int(9);
        f.li(i, 0);
        f.li(a, label as i64);
        f.for_range(i, 0, iters as i64, |f| {
            f.addi(a, a, 1);
        });
        f.halt();
    });
    pb.build()
}

/// A 1 MB store (the `VP_TRACE_CACHE_MB=1` configuration) forced to evict:
/// every run's results stay identical to direct execution — the cache only
/// trades time, never correctness — and eviction is observable in the
/// `trace_store.*` counters.
#[test]
fn one_megabyte_store_evicts_without_changing_results() {
    let cfg = RunConfig::default();
    // Each trace is a few hundred kilobytes — small enough to be cached
    // individually, but four of them overflow 1 MB.
    let programs: Vec<(String, Program)> = (0..4)
        .map(|n| (format!("loop{n}"), loop_program(n, 100_000)))
        .collect();

    let (_, report) = trace::scoped(|| {
        let store = TraceStore::with_capacity_mb(1);
        // Two sweeps over the set: the second revisits keys that may or
        // may not have survived eviction.
        for sweep in 0..2 {
            for (label, program) in &programs {
                let layout = Layout::natural(program);
                let key = TraceKey::new(label, program, &layout, &cfg);

                let mut cached = InstCounts::new();
                let stats = store
                    .capture_or_replay(key, program, &layout, &cfg, &mut cached)
                    .expect("run succeeds");

                let mut direct = InstCounts::new();
                let direct_stats = Executor::new(program, &layout)
                    .run(&mut direct, &cfg)
                    .expect("run succeeds");

                assert_eq!(stats, direct_stats, "sweep {sweep} {label}: stats");
                assert_eq!(cached, direct, "sweep {sweep} {label}: counts");
            }
        }
        assert!(
            store.resident_bytes() <= store.capacity_bytes(),
            "store must respect its byte budget"
        );
    });
    assert!(
        report.counter("trace_store.evictions") > 0,
        "four ~400 KB traces must not all fit in 1 MB"
    );
    assert!(
        report.counter("trace_store.captures") > report.counter("trace_store.hits"),
        "evictions force re-capture on the second sweep"
    );
}

/// A serialize→reload round trip through the on-disk tier must be
/// invisible to every consumer: for three real workloads, a trace loaded
/// back from its `.vptrace` file replays to exactly the same instruction
/// counts, detector records, filtered phases, and baseline cycle counts as
/// the capture it was written from.
#[test]
fn disk_round_trip_replays_bit_exact_on_three_workloads() {
    let cfg = RunConfig::default();
    let machine = MachineConfig::table2();
    let dir = tmp_dir("roundtrip");
    let tier = DiskTier::new(&dir, u64::MAX).expect("create tier");
    for (name, program) in three_workloads() {
        let layout = Layout::natural(&program);
        let key = TraceKey::new(name, &program, &layout, &cfg);
        let original = CapturedTrace::capture(&program, &layout, &cfg)
            .unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));
        tier.store(&key, &original).expect("store");
        let loaded = tier
            .load(&key)
            .unwrap_or_else(|| panic!("{name}: reload failed"));

        let mut orig_hsd = HotSpotDetector::new(HsdConfig::table2());
        let mut orig_counts = InstCounts::new();
        let mut orig_timing = TimingModel::new(machine);
        let orig_stats = original.replay(&mut (&mut orig_hsd, &mut orig_counts, &mut orig_timing));

        let mut load_hsd = HotSpotDetector::new(HsdConfig::table2());
        let mut load_counts = InstCounts::new();
        let mut load_timing = TimingModel::new(machine);
        let load_stats = loaded.replay(&mut (&mut load_hsd, &mut load_counts, &mut load_timing));

        assert_eq!(orig_stats, load_stats, "{name}: RunStats diverged");
        assert_eq!(orig_counts, load_counts, "{name}: InstCounts diverged");
        assert_eq!(
            orig_hsd.records(),
            load_hsd.records(),
            "{name}: detector records diverged"
        );
        assert_eq!(
            filter_hot_spots(orig_hsd.records(), &FilterConfig::default()),
            filter_hot_spots(load_hsd.records(), &FilterConfig::default()),
            "{name}: filtered phases diverged"
        );
        assert_eq!(
            orig_timing.cycles(),
            load_timing.cycles(),
            "{name}: baseline cycles diverged"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted or truncated `.vptrace` file must never produce wrong
/// results: the store refuses the file, re-executes live, and overwrites
/// the damaged capture through the normal write-through path.
#[test]
fn corrupted_disk_captures_fall_back_to_reexecution() {
    let cfg = RunConfig::default();
    let program = loop_program(42, 20_000);
    let layout = Layout::natural(&program);

    let mut direct = InstCounts::new();
    let direct_stats = Executor::new(&program, &layout)
        .run(&mut direct, &cfg)
        .expect("direct run");

    for (mode, mangle) in [
        (
            "bitflip",
            (|b: &mut Vec<u8>| {
                let mid = b.len() / 2;
                b[mid] ^= 0xff;
            }) as fn(&mut Vec<u8>),
        ),
        ("truncate", |b: &mut Vec<u8>| b.truncate(b.len() / 3)),
    ] {
        let dir = tmp_dir(mode);
        let path = {
            let tier = DiskTier::new(&dir, u64::MAX).expect("create tier");
            let key = TraceKey::new("corrupt", &program, &layout, &cfg);
            let trace = CapturedTrace::capture(&program, &layout, &cfg).expect("capture");
            tier.store(&key, &trace).expect("store");
            tier.path_for(&key)
        };
        let mut bytes = std::fs::read(&path).expect("read capture");
        mangle(&mut bytes);
        std::fs::write(&path, &bytes).expect("write damage");

        let (_, report) = trace::scoped(|| {
            let store = TraceStore::with_capacity_mb(64)
                .with_disk(Some(DiskTier::new(&dir, u64::MAX).expect("tier")));
            let key = TraceKey::new("corrupt", &program, &layout, &cfg);
            let mut counts = InstCounts::new();
            let stats = store
                .capture_or_replay(key, &program, &layout, &cfg, &mut counts)
                .expect("run succeeds");
            assert_eq!(stats, direct_stats, "{mode}: stats diverged");
            assert_eq!(counts, direct, "{mode}: counts diverged");
        });
        assert_eq!(
            report.counter("trace_store.disk_hits"),
            0,
            "{mode}: damaged file must not count as a hit"
        );
        assert_eq!(
            report.counter("trace_store.captures"),
            1,
            "{mode}: store must re-execute live"
        );

        // Write-through repaired the file: a fresh store loads it cleanly.
        let (_, report) = trace::scoped(|| {
            let store = TraceStore::with_capacity_mb(64)
                .with_disk(Some(DiskTier::new(&dir, u64::MAX).expect("tier")));
            let key = TraceKey::new("corrupt", &program, &layout, &cfg);
            let mut counts = InstCounts::new();
            store
                .capture_or_replay(key, &program, &layout, &cfg, &mut counts)
                .expect("run succeeds");
        });
        assert_eq!(report.counter("trace_store.disk_hits"), 1, "{mode}");
        assert_eq!(report.counter("trace_store.captures"), 0, "{mode}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// N threads racing `capture_or_replay` on the same key must produce
/// exactly one live execution — the rest wait on the in-flight capture and
/// replay it — and every thread still observes bit-identical results.
#[test]
fn concurrent_capture_or_replay_runs_one_live_execution() {
    use std::sync::Barrier;
    const N: usize = 8;
    let cfg = RunConfig::default();
    let program = loop_program(7, 50_000);
    let layout = Layout::natural(&program);
    let store = TraceStore::with_capacity_mb(64);
    let barrier = Barrier::new(N);

    let mut direct = InstCounts::new();
    let direct_stats = Executor::new(&program, &layout)
        .run(&mut direct, &cfg)
        .expect("direct run");

    let reports: Vec<trace::TraceReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                s.spawn(|| {
                    trace::scoped(|| {
                        barrier.wait();
                        let key = TraceKey::new("concurrent", &program, &layout, &cfg);
                        let mut counts = InstCounts::new();
                        let stats = store
                            .capture_or_replay(key, &program, &layout, &cfg, &mut counts)
                            .expect("run succeeds");
                        (stats, counts)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let ((stats, counts), report) = h.join().expect("worker panicked");
                assert_eq!(stats, direct_stats, "stats diverged across threads");
                assert_eq!(counts, direct, "counts diverged across threads");
                report
            })
            .collect()
    });
    let sum = |name: &str| reports.iter().map(|r| r.counter(name)).sum::<u64>();
    assert_eq!(sum("trace_store.captures"), 1, "exactly one live execution");
    assert_eq!(
        sum("trace_store.replays"),
        (N - 1) as u64,
        "every other thread replays the single capture"
    );
}

/// An over-budget store behaves like an infinite cache for this working
/// set: the second sweep is all hits.
#[test]
fn large_store_serves_second_sweep_from_cache() {
    let cfg = RunConfig::default();
    let programs: Vec<(String, Program)> = (0..3)
        .map(|n| (format!("loop{n}"), loop_program(100 + n, 50_000)))
        .collect();

    let (_, report) = trace::scoped(|| {
        let store = TraceStore::with_capacity_mb(64);
        for (label, program) in programs.iter().chain(programs.iter()) {
            let layout = Layout::natural(program);
            let key = TraceKey::new(label, program, &layout, &cfg);
            let mut counts = InstCounts::new();
            store
                .capture_or_replay(key, program, &layout, &cfg, &mut counts)
                .expect("run succeeds");
        }
    });
    assert_eq!(report.counter("trace_store.captures"), 3);
    assert_eq!(report.counter("trace_store.hits"), 3);
    assert_eq!(report.counter("trace_store.replays"), 3);
    assert_eq!(report.counter("trace_store.evictions"), 0);
}

/// For three real workloads, the batched replay kernel must deliver the
/// *byte-identical* event sequence of the per-event decoder at every
/// chunking — the degenerate `VP_REPLAY_BATCH=1` shape, a non-divisor
/// chunk size that straddles chunk boundaries on every workload, and the
/// default — and through both batched and per-event sink plumbing.
#[test]
fn batched_replay_is_bit_exact_on_real_workloads() {
    use vacuum_packing::exec::Retired;

    /// Records every event verbatim, via whichever sink path the kernel
    /// picks (the default `retire_batch` forwards to `retire`).
    #[derive(Default)]
    struct Collect(Vec<Retired>);
    impl Sink for Collect {
        fn retire(&mut self, r: &Retired) {
            self.0.push(*r);
        }
    }
    /// Same, but through an explicit batch override: catches kernels that
    /// hand the sink a chunk slice inconsistent with the event-wise path.
    #[derive(Default)]
    struct CollectBatched(Vec<Retired>);
    impl Sink for CollectBatched {
        fn retire(&mut self, r: &Retired) {
            self.0.push(*r);
        }
        fn retire_batch(&mut self, batch: &[Retired]) {
            self.0.extend_from_slice(batch);
        }
    }

    let cfg = RunConfig::default();
    for (name, program) in three_workloads() {
        let layout = Layout::natural(&program);
        let capture = CapturedTrace::capture(&program, &layout, &cfg)
            .unwrap_or_else(|e| panic!("{name}: capture failed: {e}"));

        let mut reference = Collect::default();
        let ref_stats = capture.replay_per_event(&mut reference);

        for batch in [1usize, 1009, 4096] {
            let mut got = CollectBatched::default();
            let stats = capture.replay_batched(&mut got, batch);
            assert_eq!(stats, ref_stats, "{name} batch={batch}: stats diverged");
            assert_eq!(
                got.0.len(),
                reference.0.len(),
                "{name} batch={batch}: event count diverged"
            );
            assert!(
                got.0 == reference.0,
                "{name} batch={batch}: event sequence diverged"
            );
        }

        // The default entry point (env-tuned chunk size) through the
        // per-event forwarding default.
        let mut via_default = Collect::default();
        capture.replay(&mut via_default);
        assert!(
            via_default.0 == reference.0,
            "{name}: default replay diverged"
        );
    }
}
