//! Property-based tests over the core data structures and the
//! transformations that must preserve program semantics.

use proptest::prelude::*;
use vacuum_packing::isa::{reg::RegSet, AluOp, Cond, Inst};
use vacuum_packing::opt::schedule_block;
use vacuum_packing::prelude::*;
use vacuum_packing::program::LayoutOrder;

// ---------------------------------------------------------------- scheduler

/// Strategy: a straight-line instruction over registers r20..r27 and a
/// 16-word scratch buffer addressed through r19.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = || (20u8..28).prop_map(Reg::int);
    let op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Xor),
        Just(AluOp::And),
        Just(AluOp::Or),
    ];
    prop_oneof![
        (reg(), -100i64..100).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (op, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Alu {
            op,
            rd,
            rs1,
            rs2: Src::Reg(rs2)
        }),
        (reg(), 0i64..16).prop_map(|(rd, slot)| Inst::Load { rd, base: Reg::int(19), offset: 8 * slot }),
        (reg(), 0i64..16)
            .prop_map(|(src, slot)| Inst::Store { src, base: Reg::int(19), offset: 8 * slot }),
    ]
}

/// Executes `insts` as a single block against a fresh 16-word buffer and
/// returns (r20..r28, buffer words).
fn run_block(insts: &[Inst], seed: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut pb = ProgramBuilder::new();
    let base = pb.data(seed.to_vec());
    pb.func("main", |f| {
        f.li(Reg::int(19), base as i64);
        for i in insts {
            f.emit(i.clone());
        }
        f.halt();
    });
    let p = pb.build();
    let layout = Layout::natural(&p);
    let mut ex = Executor::new(&p, &layout);
    ex.run(&mut NullSink, &RunConfig::default()).expect("block runs");
    let regs = (20..28).map(|i| ex.reg(Reg::int(i))).collect();
    let mem = (0..seed.len()).map(|i| ex.memory().read(base + 8 * i as u64)).collect();
    (regs, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// List scheduling may reorder instructions but must preserve the
    /// architectural result exactly — the dependence DAG is the proof
    /// obligation, execution is the check.
    #[test]
    fn scheduling_preserves_semantics(
        insts in proptest::collection::vec(arb_inst(), 0..24),
        seed in proptest::collection::vec(0u64..1000, 16),
    ) {
        let machine = MachineConfig::table2();
        let (sched, cycles) = schedule_block(&insts, &machine);
        prop_assert_eq!(sched.len(), insts.len());
        prop_assert!(cycles as usize <= insts.len().max(1) * 16);
        let before = run_block(&insts, &seed);
        let after = run_block(&sched, &seed);
        prop_assert_eq!(before, after);
    }

    /// Scheduling is idempotent on its own output in terms of semantics
    /// and never increases the estimated cycle count.
    #[test]
    fn rescheduling_never_lengthens(
        insts in proptest::collection::vec(arb_inst(), 0..24),
    ) {
        let machine = MachineConfig::table2();
        let (s1, c1) = schedule_block(&insts, &machine);
        let (_s2, c2) = schedule_block(&s1, &machine);
        prop_assert!(c2 <= c1 + 1, "rescheduling regressed: {} -> {}", c1, c2);
    }
}

// ------------------------------------------------------------------ layout

/// A small two-loop program whose behavior depends on `bias` data.
fn looped_program(bias: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.func("main", |f| {
        let (i, acc, t) = (Reg::int(20), Reg::int(21), Reg::int(22));
        f.li(acc, 0);
        f.for_range(i, 0, 60, |f| {
            f.rem(t, i, bias.max(1));
            let c = f.cond(Cond::Eq, t, Src::Imm(0));
            f.if_else(c, |f| f.addi(acc, acc, 3), |f| f.addi(acc, acc, 1));
        });
        f.halt();
    });
    pb.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any permutation of a function's blocks encodes to a program with
    /// identical architectural behavior: layout only changes encodings
    /// (fall-through vs jumps), never semantics.
    #[test]
    fn block_order_is_semantics_free(bias in 1i64..7, perm_seed in 0u64..1000) {
        let p = looped_program(bias);
        let natural = Layout::natural(&p);
        let mut ex = Executor::new(&p, &natural);
        let s0 = ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let acc0 = ex.reg(Reg::int(21));

        // Deterministic pseudo-random permutation of the blocks.
        let n = p.funcs[0].blocks.len();
        let mut order: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut lo = LayoutOrder::natural(&p);
        lo.set_block_order(FuncId(0), order);
        let shuffled = Layout::new(&p, &lo);
        let mut ex = Executor::new(&p, &shuffled);
        let s1 = ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        prop_assert_eq!(ex.reg(Reg::int(21)), acc0);
        // Architectural branch counts match; total retired may differ by
        // the extra jumps the layout introduces.
        prop_assert_eq!(s0.cond_branches, s1.cond_branches);
        prop_assert!(s1.retired >= s0.retired.min(s1.retired));
    }

    /// Layout never overlaps blocks and accounts for every instruction.
    #[test]
    fn layout_is_contiguous(bias in 1i64..7) {
        let p = looped_program(bias);
        let layout = Layout::natural(&p);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for f in &p.funcs {
            for (bid, _) in f.blocks_iter() {
                let r = CodeRef { func: f.id, block: bid };
                spans.push((layout.addr_of(r), layout.insts_of(r) * 4));
            }
        }
        spans.sort_unstable();
        let total: u64 = spans.iter().map(|s| s.1).sum();
        prop_assert_eq!(total, layout.total_bytes());
        for w in spans.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "blocks overlap: {:?}", w);
        }
    }
}

// ------------------------------------------------------------- small models

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// RegSet behaves like a BTreeSet of register indices.
    #[test]
    fn regset_matches_model(ops in proptest::collection::vec((0usize..96, any::<bool>()), 0..64)) {
        let mut s = RegSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (idx, insert) in ops {
            let r = Reg::from_index(idx);
            if insert {
                prop_assert_eq!(s.insert(r), model.insert(idx));
            } else {
                prop_assert_eq!(s.remove(r), model.remove(&idx));
            }
        }
        prop_assert_eq!(s.len(), model.len());
        let got: Vec<usize> = s.iter().map(|r| r.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// A condition and its negation partition every input pair.
    #[test]
    fn cond_negation_partitions(a in any::<u64>(), b in any::<u64>()) {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            prop_assert_ne!(c.eval(a, b), c.negate().eval(a, b));
        }
    }

    /// Sparse memory behaves like a word-granular map.
    #[test]
    fn memory_matches_model(
        writes in proptest::collection::vec((0u64..1_000_000, any::<u64>()), 0..64)
    ) {
        let mut mem = vacuum_packing::exec::Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let word = (addr / 8) * 8;
            mem.write(*addr, *val);
            model.insert(word, *val);
        }
        for (addr, _) in &writes {
            let word = (addr / 8) * 8;
            prop_assert_eq!(mem.read(*addr), model[&word]);
        }
    }
}

// --------------------------------------------------------------- hsd filter

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The software filter never produces more phases than raw records,
    /// never loses a detection, and assigns dense ids.
    #[test]
    fn filter_is_a_partition(
        records in proptest::collection::vec(
            proptest::collection::vec((0u64..32, 1u32..512), 1..12),
            1..20,
        )
    ) {
        use vacuum_packing::hsd::{filter_hot_spots, BranchProfile, FilterConfig, HotSpotRecord};
        let recs: Vec<HotSpotRecord> = records
            .iter()
            .enumerate()
            .map(|(i, branches)| HotSpotRecord {
                at_branch: i as u64,
                branches: branches
                    .iter()
                    .map(|&(b, e)| BranchProfile { addr: 0x1000 + 4 * b, exec: e, taken: e / 2 })
                    .collect(),
            })
            .collect();
        let phases = filter_hot_spots(&recs, &FilterConfig::default());
        prop_assert!(!phases.is_empty());
        prop_assert!(phases.len() <= recs.len());
        let total: usize = phases.iter().map(|p| p.detections).sum();
        prop_assert_eq!(total, recs.len(), "every record lands in exactly one phase");
        for (i, p) in phases.iter().enumerate() {
            prop_assert_eq!(p.id, i);
            prop_assert!(!p.branches.is_empty());
        }
    }
}
