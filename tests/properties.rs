//! Property-based tests over the core data structures and the
//! transformations that must preserve program semantics.
//!
//! Uses a hand-rolled deterministic case generator (SplitMix64-driven, a
//! fixed number of cases per property) instead of an external property
//! testing crate, so the suite builds with no registry access. Every case
//! is reproducible: failures report the case index, and the generator is
//! seeded per-property.

use vacuum_packing::isa::{reg::RegSet, AluOp, Cond, Inst};
use vacuum_packing::opt::schedule_block;
use vacuum_packing::prelude::*;
use vacuum_packing::program::LayoutOrder;
use vacuum_packing::workloads::rng::SplitMix64;

// ---------------------------------------------------------------- scheduler

/// Generates a straight-line instruction over registers r20..r27 and a
/// 16-word scratch buffer addressed through r19.
fn arb_inst(rng: &mut SplitMix64) -> Inst {
    const OPS: [AluOp; 6] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
    ];
    let reg = |rng: &mut SplitMix64| Reg::int(rng.gen_range(20..28u32) as u8);
    match rng.gen_range(0..4u32) {
        0 => Inst::Li {
            rd: reg(rng),
            imm: rng.gen_range(-100..100i32) as i64,
        },
        1 => {
            let op = OPS[rng.gen_range(0..OPS.len())];
            Inst::Alu {
                op,
                rd: reg(rng),
                rs1: reg(rng),
                rs2: Src::Reg(reg(rng)),
            }
        }
        2 => Inst::Load {
            rd: reg(rng),
            base: Reg::int(19),
            offset: 8 * rng.gen_range(0..16u32) as i64,
        },
        _ => Inst::Store {
            src: reg(rng),
            base: Reg::int(19),
            offset: 8 * rng.gen_range(0..16u32) as i64,
        },
    }
}

/// Executes `insts` as a single block against a fresh 16-word buffer and
/// returns (r20..r28, buffer words).
fn run_block(insts: &[Inst], seed: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut pb = ProgramBuilder::new();
    let base = pb.data(seed.to_vec());
    pb.func("main", |f| {
        f.li(Reg::int(19), base as i64);
        for i in insts {
            f.emit(i.clone());
        }
        f.halt();
    });
    let p = pb.build();
    let layout = Layout::natural(&p);
    let mut ex = Executor::new(&p, &layout);
    ex.run(&mut NullSink, &RunConfig::default())
        .expect("block runs");
    let regs = (20..28).map(|i| ex.reg(Reg::int(i))).collect();
    let mem = (0..seed.len())
        .map(|i| ex.memory().read(base + 8 * i as u64))
        .collect();
    (regs, mem)
}

/// List scheduling may reorder instructions but must preserve the
/// architectural result exactly — the dependence DAG is the proof
/// obligation, execution is the check.
#[test]
fn scheduling_preserves_semantics() {
    let machine = MachineConfig::table2();
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0001);
    for case in 0..64 {
        let n = rng.gen_range(0..24usize);
        let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng)).collect();
        let seed: Vec<u64> = (0..16).map(|_| rng.gen_range(0..1000u64)).collect();
        let (sched, cycles) = schedule_block(&insts, &machine);
        assert_eq!(sched.len(), insts.len(), "case {case}");
        assert!(cycles as usize <= insts.len().max(1) * 16, "case {case}");
        let before = run_block(&insts, &seed);
        let after = run_block(&sched, &seed);
        assert_eq!(before, after, "case {case}: scheduling changed semantics");
    }
}

/// Scheduling is idempotent on its own output in terms of semantics
/// and never increases the estimated cycle count.
#[test]
fn rescheduling_never_lengthens() {
    let machine = MachineConfig::table2();
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0002);
    for case in 0..64 {
        let n = rng.gen_range(0..24usize);
        let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng)).collect();
        let (s1, c1) = schedule_block(&insts, &machine);
        let (_s2, c2) = schedule_block(&s1, &machine);
        assert!(
            c2 <= c1 + 1,
            "case {case}: rescheduling regressed: {c1} -> {c2}"
        );
    }
}

// ------------------------------------------------------------------ layout

/// A small two-loop program whose behavior depends on `bias` data.
fn looped_program(bias: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.func("main", |f| {
        let (i, acc, t) = (Reg::int(20), Reg::int(21), Reg::int(22));
        f.li(acc, 0);
        f.for_range(i, 0, 60, |f| {
            f.rem(t, i, bias.max(1));
            let c = f.cond(Cond::Eq, t, Src::Imm(0));
            f.if_else(c, |f| f.addi(acc, acc, 3), |f| f.addi(acc, acc, 1));
        });
        f.halt();
    });
    pb.build()
}

/// Any permutation of a function's blocks encodes to a program with
/// identical architectural behavior: layout only changes encodings
/// (fall-through vs jumps), never semantics.
#[test]
fn block_order_is_semantics_free() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0003);
    for case in 0..48 {
        let bias = rng.gen_range(1..7i32) as i64;
        let perm_seed = rng.gen_range(0..1000u64);
        let p = looped_program(bias);
        let natural = Layout::natural(&p);
        let mut ex = Executor::new(&p, &natural);
        let s0 = ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        let acc0 = ex.reg(Reg::int(21));

        // Deterministic pseudo-random permutation of the blocks.
        let n = p.funcs[0].blocks.len();
        let mut order: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut lo = LayoutOrder::natural(&p);
        lo.set_block_order(FuncId(0), order);
        let shuffled = Layout::new(&p, &lo);
        let mut ex = Executor::new(&p, &shuffled);
        let s1 = ex.run(&mut NullSink, &RunConfig::default()).unwrap();
        assert_eq!(ex.reg(Reg::int(21)), acc0, "case {case}");
        // Architectural branch counts match; total retired may differ by
        // the extra jumps the layout introduces.
        assert_eq!(s0.cond_branches, s1.cond_branches, "case {case}");
        assert!(s1.retired >= s0.retired.min(s1.retired), "case {case}");
    }
}

/// Layout never overlaps blocks and accounts for every instruction.
#[test]
fn layout_is_contiguous() {
    for bias in 1..7i64 {
        let p = looped_program(bias);
        let layout = Layout::natural(&p);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for f in &p.funcs {
            for (bid, _) in f.blocks_iter() {
                let r = CodeRef {
                    func: f.id,
                    block: bid,
                };
                spans.push((layout.addr_of(r), layout.insts_of(r) * 4));
            }
        }
        spans.sort_unstable();
        let total: u64 = spans.iter().map(|s| s.1).sum();
        assert_eq!(total, layout.total_bytes(), "bias {bias}");
        for w in spans.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "bias {bias}: blocks overlap: {w:?}"
            );
        }
    }
}

// ------------------------------------------------------------- small models

/// RegSet behaves like a BTreeSet of register indices.
#[test]
fn regset_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0004);
    for case in 0..128 {
        let n = rng.gen_range(0..64usize);
        let mut s = RegSet::new();
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n {
            let idx = rng.gen_range(0..96usize);
            let insert = rng.next_u64() & 1 == 0;
            let r = Reg::from_index(idx);
            if insert {
                assert_eq!(s.insert(r), model.insert(idx), "case {case}");
            } else {
                assert_eq!(s.remove(r), model.remove(&idx), "case {case}");
            }
        }
        assert_eq!(s.len(), model.len(), "case {case}");
        let got: Vec<usize> = s.iter().map(|r| r.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// A condition and its negation partition every input pair.
#[test]
fn cond_negation_partitions() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0005);
    for case in 0..128 {
        // Mix raw draws with boundary-heavy values: equality and wraparound
        // edges are where comparison predicates disagree.
        const EDGES: [u64; 6] = [
            0,
            1,
            u64::MAX,
            u64::MAX - 1,
            i64::MAX as u64,
            i64::MIN as u64,
        ];
        let pick = |rng: &mut SplitMix64| {
            if rng.next_u64() & 3 == 0 {
                EDGES[rng.gen_range(0..EDGES.len())]
            } else {
                rng.next_u64()
            }
        };
        let a = pick(&mut rng);
        let b = if rng.next_u64() & 7 == 0 {
            a
        } else {
            pick(&mut rng)
        };
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu] {
            assert_ne!(
                c.eval(a, b),
                c.negate().eval(a, b),
                "case {case}: {c:?} on ({a}, {b})"
            );
        }
    }
}

/// Sparse memory behaves like a word-granular map.
#[test]
fn memory_matches_model() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0006);
    for case in 0..128 {
        let n = rng.gen_range(0..64usize);
        let writes: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.gen_range(0..1_000_000u64), rng.next_u64()))
            .collect();
        let mut mem = vacuum_packing::exec::Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let word = (addr / 8) * 8;
            mem.write(*addr, *val);
            model.insert(word, *val);
        }
        for (addr, _) in &writes {
            let word = (addr / 8) * 8;
            assert_eq!(mem.read(*addr), model[&word], "case {case}");
        }
    }
}

// --------------------------------------------------------------- hsd filter

/// The software filter never produces more phases than raw records,
/// never loses a detection, and assigns dense ids.
#[test]
fn filter_is_a_partition() {
    use vacuum_packing::hsd::{filter_hot_spots, BranchProfile, FilterConfig, HotSpotRecord};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0007);
    for case in 0..64 {
        let nrecs = rng.gen_range(1..=20usize);
        let recs: Vec<HotSpotRecord> = (0..nrecs)
            .map(|i| {
                let nbranches = rng.gen_range(1..=12usize);
                HotSpotRecord {
                    at_branch: i as u64,
                    branches: (0..nbranches)
                        .map(|_| {
                            let b = rng.gen_range(0..32u64);
                            let e = rng.gen_range(1..512u32);
                            BranchProfile {
                                addr: 0x1000 + 4 * b,
                                exec: e,
                                taken: e / 2,
                            }
                        })
                        .collect(),
                }
            })
            .collect();
        let phases = filter_hot_spots(&recs, &FilterConfig::default());
        assert!(!phases.is_empty(), "case {case}");
        assert!(phases.len() <= recs.len(), "case {case}");
        let total: usize = phases.iter().map(|p| p.detections).sum();
        assert_eq!(
            total,
            recs.len(),
            "case {case}: every record lands in exactly one phase"
        );
        for (i, p) in phases.iter().enumerate() {
            assert_eq!(p.id, i, "case {case}");
            assert!(!p.branches.is_empty(), "case {case}");
        }
    }
}

// ---------------------------------------------------------- merge algebra

/// Generates a random [`ProfileDump`]: 1–4 phases over a small shared
/// address pool (so cross-dump phases overlap often), counts in the 9-bit
/// hardware counter scale.
fn arb_dump(rng: &mut SplitMix64, label: &str) -> vacuum_packing::hsd::ProfileDump {
    use vacuum_packing::hsd::{Phase, PhaseBranch, ProfileDump};
    let nphases = rng.gen_range(1..=4usize);
    let phases: Vec<Phase> = (0..nphases)
        .map(|id| {
            let nbranches = rng.gen_range(2..=10usize);
            let branches = (0..nbranches)
                .map(|_| {
                    let addr = 0x1000 + 4 * rng.gen_range(0..24u64);
                    let exec = rng.gen_range(16..512u64);
                    let taken = rng.gen_range(0..exec + 1);
                    (
                        addr,
                        PhaseBranch {
                            exec,
                            taken,
                            seen: rng.gen_range(1..5u64),
                        },
                    )
                })
                .collect();
            Phase {
                id,
                branches,
                first_detected_at: rng.gen_range(0..1_000_000u64),
                detections: rng.gen_range(1..8usize),
            }
        })
        .collect();
    ProfileDump::new(label, rng.gen_range(10_000..10_000_000u64), phases)
}

#[test]
fn merge_is_associative() {
    use vacuum_packing::hsd::{MergeConfig, MergedProfile};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0008);
    for case in 0..64 {
        let a = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "A")]);
        let b = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "B")]);
        let c = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "C")]);
        let left = a.union(&b).union(&c);
        let right = a.union(&b.union(&c));
        assert_eq!(left, right, "case {case}: (a∪b)∪c == a∪(b∪c)");
        assert_eq!(
            left.resolve(),
            right.resolve(),
            "case {case}: resolution must agree too"
        );
    }
}

#[test]
fn merge_is_commutative() {
    use vacuum_packing::hsd::{MergeConfig, MergedProfile};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0009);
    for case in 0..64 {
        let a = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "A")]);
        let b = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "B")]);
        assert_eq!(a.union(&b), b.union(&a), "case {case}: a∪b == b∪a");
        assert_eq!(
            a.union(&b).resolve(),
            b.union(&a).resolve(),
            "case {case}: resolution must agree too"
        );
    }
}

#[test]
fn self_merge_is_idempotent() {
    use vacuum_packing::hsd::{MergeConfig, MergedProfile};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_000a);
    for case in 0..64 {
        let a = MergedProfile::of(MergeConfig::default(), [arb_dump(&mut rng, "A")]);
        assert_eq!(a.union(&a), a, "case {case}: a∪a == a");
        assert_eq!(
            a.union(&a).resolve(),
            a.resolve(),
            "case {case}: self-merge must not change the resolved phases"
        );
        // Absorbing the same dump twice is the same identity at the
        // dump level.
        let d = arb_dump(&mut rng, "D");
        let once = MergedProfile::of(MergeConfig::default(), [d.clone()]);
        let twice = MergedProfile::of(MergeConfig::default(), [d.clone(), d]);
        assert_eq!(once, twice, "case {case}");
    }
}

#[test]
fn merge_resolution_is_insertion_order_independent() {
    use vacuum_packing::hsd::{MergeConfig, MergedProfile, ProfileDump};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_000b);
    for case in 0..32 {
        let dumps: Vec<ProfileDump> = (0..4)
            .map(|i| arb_dump(&mut rng, &format!("run {i}")))
            .collect();
        let forward = MergedProfile::of(MergeConfig::default(), dumps.clone());
        let backward = MergedProfile::of(MergeConfig::default(), dumps.into_iter().rev());
        assert_eq!(forward, backward, "case {case}");
        assert_eq!(forward.resolve(), backward.resolve(), "case {case}");
    }
}

#[test]
fn merge_respects_the_counter_scale() {
    use vacuum_packing::hsd::{MergeConfig, MergedProfile, ProfileDump};
    let mut rng = SplitMix64::seed_from_u64(0x5eed_000c);
    let cfg = MergeConfig::default();
    for case in 0..32 {
        let dumps: Vec<ProfileDump> = (0..rng.gen_range(2..=5usize))
            .map(|i| arb_dump(&mut rng, &format!("run {i}")))
            .collect();
        let resolved = MergedProfile::of(cfg, dumps).resolve();
        for (i, p) in resolved.iter().enumerate() {
            assert_eq!(p.id, i, "case {case}: dense ids in cluster order");
            for (addr, b) in &p.branches {
                assert!(
                    b.exec <= cfg.counter_max,
                    "case {case}: branch {addr:#x} exec {} above counter max",
                    b.exec
                );
                assert!(
                    b.taken <= b.exec,
                    "case {case}: branch {addr:#x} taken {} > exec {}",
                    b.taken,
                    b.exec
                );
            }
        }
    }
}
