//! Cross-crate pipeline invariants over real workloads.

use vacuum_packing::core::pack;
use vacuum_packing::metrics::{categorize, evaluate, profile};
use vacuum_packing::prelude::*;

fn profiled(label: &str, program: Program) -> vacuum_packing::metrics::ProfiledWorkload {
    profile(label, program, &HsdConfig::table2(), None).expect("profiling succeeds")
}

#[test]
fn coverage_is_a_fraction_and_configs_are_ordered() {
    let pw = profiled("300.twolf A", vacuum_packing::workloads::twolf::build(1));
    let mut coverages = Vec::new();
    for cfg in PackConfig::evaluation_matrix() {
        let out = evaluate(&pw, &cfg, &OptConfig::default(), None).unwrap();
        assert!((0.0..=1.0).contains(&out.coverage));
        coverages.push((cfg, out.coverage));
    }
    // Linking can only help within the same inference setting.
    assert!(
        coverages[1].1 + 1e-9 >= coverages[0].1,
        "noInf: link >= noLink"
    );
    assert!(
        coverages[3].1 + 1e-9 >= coverages[2].1,
        "inf: link >= noLink"
    );
}

#[test]
fn packed_program_always_validates() {
    for (label, program) in [
        ("181.mcf A", vacuum_packing::workloads::mcf::build(1)),
        ("175.vpr A", vacuum_packing::workloads::vpr::build(1)),
    ] {
        let pw = profiled(label, program);
        for cfg in PackConfig::evaluation_matrix() {
            let out = pack(&pw.program, &pw.layout, &pw.phases, &cfg);
            out.program
                .validate()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            // Package functions are marked and non-empty.
            for pi in &out.packages {
                assert!(out.program.func(pi.func).is_package());
                assert!(pi.static_insts > 0);
                assert_eq!(pi.meta.len(), out.program.func(pi.func).blocks.len());
            }
            // Expansion identity: package insts = selected * replication.
            let lhs = out.package_insts as f64;
            let rhs = out.selected_insts as f64 * out.replication_factor();
            assert!((lhs - rhs).abs() < 1.0);
        }
    }
}

#[test]
fn m88ksim_loader_phases_share_launch_point_and_link() {
    let pw = profiled(
        "124.m88ksim A",
        vacuum_packing::workloads::m88ksim::build(1),
    );
    let out = pack(&pw.program, &pw.layout, &pw.phases, &PackConfig::default());
    // Find loader packages: roots named load_binary.
    let loaders: Vec<_> = out
        .packages
        .iter()
        .filter(|pi| out.program.func(pi.root).name == "load_binary")
        .collect();
    assert!(
        loaders.len() >= 2,
        "two loader phases must produce two packages"
    );
    // They are linked: at least one link in or out per loader group.
    let linked: usize = loaders.iter().map(|pi| pi.links_in + pi.links_out).sum();
    assert!(linked > 0, "loader packages must be linked together");
    // And linking is what makes the second loader reachable.
    let with = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None).unwrap();
    let without = evaluate(
        &pw,
        &PackConfig {
            linking: false,
            ..PackConfig::default()
        },
        &OptConfig::default(),
        None,
    )
    .unwrap();
    assert!(
        with.coverage > without.coverage + 0.03,
        "linking must add coverage: {:.3} vs {:.3}",
        with.coverage,
        without.coverage
    );
}

#[test]
fn li_weak_callers_limit_coverage() {
    // The 130.li anecdote: calls to eval_expr from weak callers keep
    // running original code, so coverage stays measurably below 100%.
    let pw = profiled(
        "130.li A",
        vacuum_packing::workloads::li::build(vacuum_packing::workloads::li::Input::A, 1),
    );
    let out = evaluate(&pw, &PackConfig::default(), &OptConfig::default(), None).unwrap();
    assert!(
        out.coverage > 0.7,
        "most execution still packaged: {:.3}",
        out.coverage
    );
    assert!(
        out.coverage < 0.995,
        "weak-caller execution must be missed: {:.3}",
        out.coverage
    );
}

#[test]
fn twolf_accept_branch_is_multi_high() {
    let pw = profiled("300.twolf A", vacuum_packing::workloads::twolf::build(1));
    let cat = categorize(&pw.phases, &pw.branch_counts, 0.7);
    assert!(
        cat.of(vacuum_packing::metrics::BranchCategory::MultiHigh) > 0.05,
        "the annealing accept branch must be Multi High"
    );
}

#[test]
fn detector_is_deterministic() {
    let build = || {
        let p = vacuum_packing::workloads::vortex::build(
            vacuum_packing::workloads::vortex::Input::A,
            1,
        );
        let pw = profiled("255.vortex A", p);
        (pw.phases.len(), pw.dyn_insts, pw.raw_detections)
    };
    assert_eq!(build(), build());
}

#[test]
fn speedup_correlates_with_optimization() {
    // Rescheduling + relayout must not slow the packed binary down
    // relative to packing alone.
    let machine = MachineConfig::table2();
    let program =
        vacuum_packing::workloads::ijpeg::build(vacuum_packing::workloads::ijpeg::Input::B, 1);
    let pw = profile("132.ijpeg B", program, &HsdConfig::table2(), Some(&machine)).unwrap();
    let full = evaluate(
        &pw,
        &PackConfig::default(),
        &OptConfig::default(),
        Some(&machine),
    )
    .unwrap();
    let none = evaluate(
        &pw,
        &PackConfig::default(),
        &OptConfig {
            relayout: false,
            reschedule: false,
            sink_cold: false,
            licm: false,
        },
        Some(&machine),
    )
    .unwrap();
    let (s_full, s_none) = (full.speedup.unwrap(), none.speedup.unwrap());
    assert!(
        s_full >= s_none - 0.01,
        "optimization should help or be neutral: {s_full:.3} vs {s_none:.3}"
    );
    assert!(
        s_full > 1.0,
        "ijpeg gains from package optimization: {s_full:.3}"
    );
}

#[test]
fn two_level_inlined_exits_reconstruct_frames() {
    // main (hot loop) -> outer -> inner, all hot; inner has a rare cold
    // path. The package roots at main and inlines two levels deep; exits
    // from the inner context must rebuild BOTH elided frames so the
    // original inner's Ret lands in the original outer, and outer's Ret
    // back in main.
    use vacuum_packing::program::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let inner = pb.declare("inner");
    pb.define(inner, |f| {
        let x = Reg::arg(0);
        // cold when x % 97 == 0 (~1%)
        f.rem(Reg::int(24), x, 97);
        let cold = f.cond(Cond::Eq, Reg::int(24), Src::Imm(0));
        f.if_else(
            cold,
            |f| {
                // rare path with distinct work
                f.mul(Reg::ARG0, x, 3);
                f.addi(Reg::ARG0, Reg::ARG0, 1);
                f.ret();
            },
            |f| {
                f.addi(Reg::ARG0, x, 7);
                f.ret();
            },
        );
    });
    let outer = pb.declare("outer");
    pb.define(outer, |f| {
        f.call(inner);
        // post-call work that MUST run even when inner took its cold path
        f.addi(Reg::ARG0, Reg::ARG0, 1000);
        f.ret();
    });
    let main = pb.declare("main");
    pb.define(main, |f| {
        let (i, acc) = (Reg::int(56), Reg::int(57));
        f.li(acc, 0);
        f.for_range(i, 0, 60_000, |f| {
            f.mov(Reg::arg(0), i);
            f.call(outer);
            f.add(acc, acc, Reg::ARG0);
        });
        f.halt();
    });
    pb.set_entry(main);
    let program = pb.build();

    // Reference run.
    let layout = Layout::natural(&program);
    let mut ex = Executor::new(&program, &layout);
    ex.run(&mut NullSink, &RunConfig::default()).unwrap();
    let want = ex.reg(Reg::int(57));

    // Profile + pack + run the rewritten binary.
    let pw = profiled("deep-inline", program);
    assert!(!pw.phases.is_empty());
    let out = pack(&pw.program, &pw.layout, &pw.phases, &PackConfig::default());
    // The package must contain inner blocks at context depth 2.
    let deep = out
        .packages
        .iter()
        .any(|pi| pi.meta.iter().any(|m| m.context.len() == 2));
    assert!(
        deep,
        "inner must be inlined through outer (depth-2 context)"
    );
    let packed_layout = Layout::natural(&out.program);
    let mut ex = Executor::new(&out.program, &packed_layout);
    let mut counts = InstCounts::new();
    ex.run(&mut counts, &RunConfig::default()).unwrap();
    assert_eq!(
        ex.reg(Reg::int(57)),
        want,
        "deep-exit frames must reconstruct"
    );
    assert!(counts.package_coverage() > 0.8);
}
