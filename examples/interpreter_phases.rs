//! The paper's Section 3.3.4 motivating scenario, live: a perl-style
//! interpreter whose command loop roots several per-phase packages, linked
//! together so execution migrates between them at phase changes.
//!
//! ```text
//! cargo run --release --example interpreter_phases
//! ```

use vacuum_packing::core::pack;
use vacuum_packing::metrics::{evaluate, profile};
use vacuum_packing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program =
        vacuum_packing::workloads::perl::build(vacuum_packing::workloads::perl::Input::A, 1);
    let profiled = profile("134.perl A", program, &HsdConfig::table2(), None)?;
    println!(
        "{} phases detected in the interpreter run",
        profiled.phases.len()
    );

    // Inspect the packages: several share the interpreter's command loop
    // as their root function.
    let out = pack(
        &profiled.program,
        &profiled.layout,
        &profiled.phases,
        &PackConfig::default(),
    );
    println!("\npackages:");
    for pi in &out.packages {
        println!(
            "  phase {} rooted at `{}`: {} static insts, {} entries, links in/out {}/{}",
            pi.phase,
            out.program.func(pi.root).name,
            pi.static_insts,
            pi.entries.len(),
            pi.links_in,
            pi.links_out,
        );
    }
    let shared_roots = {
        let mut roots: Vec<_> = out.packages.iter().map(|p| p.root).collect();
        roots.sort();
        roots.dedup();
        out.packages.len() - roots.len()
    };
    println!("\n{shared_roots} package(s) share a root with a sibling — linking candidates");

    // The point of linking: with a shared launch point, only one package is
    // directly reachable; links let the others be reached through cold
    // exits.
    let with = evaluate(
        &profiled,
        &PackConfig::default(),
        &OptConfig::default(),
        None,
    )?;
    let without = evaluate(
        &profiled,
        &PackConfig {
            linking: false,
            ..PackConfig::default()
        },
        &OptConfig::default(),
        None,
    )?;
    println!("coverage without linking: {:.1}%", 100.0 * without.coverage);
    println!("coverage with    linking: {:.1}%", 100.0 * with.coverage);
    Ok(())
}
