//! Phase-sensitivity explorer on the annealing workload.
//!
//! `300.twolf`'s accept branch flips bias as the temperature schedule
//! cools — the paper's Multi-High category. This example shows (a) the
//! per-phase taken fractions the Hot Spot Detector recorded for that
//! branch, and (b) how the `MAX_BLOCKS` growth knob and the configuration
//! matrix change the extracted packages.
//!
//! ```text
//! cargo run --release --example annealing_explorer
//! ```

use vacuum_packing::core::pack;
use vacuum_packing::metrics::{categorize, evaluate, profile, TextTable, CATEGORIES};
use vacuum_packing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = vacuum_packing::workloads::twolf::build(1);
    let profiled = profile("300.twolf A", program, &HsdConfig::table2(), None)?;

    // (a) Find branches shared across phases with large bias swings.
    println!("branches appearing in multiple phases:");
    let mut per_branch: std::collections::BTreeMap<u64, Vec<(usize, f64)>> = Default::default();
    for ph in &profiled.phases {
        for (&addr, b) in &ph.branches {
            per_branch
                .entry(addr)
                .or_default()
                .push((ph.id, b.taken_fraction()));
        }
    }
    for (addr, obs) in per_branch.iter().filter(|(_, v)| v.len() > 1) {
        let loc = profiled
            .layout
            .branch_at(*addr)
            .expect("profiled branch maps to code");
        let fracs: Vec<String> = obs
            .iter()
            .map(|(p, f)| format!("phase{p}: {:.0}%", 100.0 * f))
            .collect();
        println!(
            "  {} in `{}`: {}",
            loc,
            profiled.program.func(loc.func).name,
            fracs.join(", ")
        );
    }

    // The Figure 9 taxonomy over this run.
    let cat = categorize(&profiled.phases, &profiled.branch_counts, 0.7);
    println!("\nFigure 9 taxonomy (fractions of hot-spot branch executions):");
    for (i, c) in CATEGORIES.iter().enumerate() {
        if cat.fraction[i] > 0.0 {
            println!("  {:<15} {:.1}%", c.label(), 100.0 * cat.fraction[i]);
        }
    }

    // (b) Sweep MAX_BLOCKS and the evaluation matrix.
    let mut t = TextTable::new(vec!["config", "coverage %", "expansion %", "packages"]);
    for max_blocks in [0usize, 1, 4] {
        let cfg = PackConfig {
            max_growth_blocks: max_blocks,
            ..PackConfig::default()
        };
        let out = evaluate(&profiled, &cfg, &OptConfig::default(), None)?;
        t.row(vec![
            format!("MAX_BLOCKS={max_blocks}"),
            format!("{:.1}", 100.0 * out.coverage),
            format!("{:.1}", 100.0 * out.expansion),
            out.packages.to_string(),
        ]);
    }
    for (label, cfg) in ["noInf/noLink", "noInf/link", "inf/noLink", "inf/link"]
        .iter()
        .zip(PackConfig::evaluation_matrix())
    {
        let out = evaluate(&profiled, &cfg, &OptConfig::default(), None)?;
        t.row(vec![
            label.to_string(),
            format!("{:.1}", 100.0 * out.coverage),
            format!("{:.1}", 100.0 * out.expansion),
            out.packages.to_string(),
        ]);
    }
    println!("\n{t}");

    // Show the package inventory for the default configuration.
    let out = pack(
        &profiled.program,
        &profiled.layout,
        &profiled.phases,
        &PackConfig::default(),
    );
    println!("package inventory (inference + linking):");
    for pi in &out.packages {
        println!(
            "  {} <- phase {} (root `{}`, {} insts)",
            out.program.func(pi.func).name,
            pi.phase,
            out.program.func(pi.root).name,
            pi.static_insts
        );
    }
    Ok(())
}
