//! Writing your own workload with the builder DSL and vacuum-packing it.
//!
//! A two-phase "image filter" is built from scratch: a blur phase and a
//! threshold phase over the same pixel loop. The example then walks the
//! whole pipeline by hand — detector, filter, region identification,
//! package construction, rewriting — the long way around, where the other
//! examples use the `vp-metrics` harness.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use vacuum_packing::core::{identify_region, pack, CfgCache};
use vacuum_packing::prelude::*;

fn build_filter_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let pixels = pb.data((0..4096u64).map(|i| (i * 37) % 256).collect());
    let out = pb.zeros(4096);

    // blur(rounds=arg0): smooth neighbouring pixels.
    let blur = pb.declare("blur");
    pb.define(blur, |f| {
        let rounds = Reg::arg(0);
        let (k, i, a, x, y) = (
            Reg::int(24),
            Reg::int(25),
            Reg::int(26),
            Reg::int(27),
            Reg::int(28),
        );
        f.mov(Reg::int(29), rounds);
        f.for_range(k, 0, Src::Reg(Reg::int(29)), |f| {
            f.for_range(i, 0, 4095, |f| {
                f.shl(a, i, 3);
                f.add(a, a, Src::Imm(pixels as i64));
                f.load(x, a, 0);
                f.load(y, a, 8);
                f.add(x, x, y);
                f.shr(x, x, 1);
                f.shl(a, i, 3);
                f.add(a, a, Src::Imm(out as i64));
                f.store(x, a, 0);
            });
        });
        f.ret();
    });

    // threshold(rounds=arg0): binarize with a data-dependent branch.
    let threshold = pb.declare("threshold");
    pb.define(threshold, |f| {
        let rounds = Reg::arg(0);
        let (k, i, a, x) = (Reg::int(24), Reg::int(25), Reg::int(26), Reg::int(27));
        f.mov(Reg::int(29), rounds);
        f.for_range(k, 0, Src::Reg(Reg::int(29)), |f| {
            f.for_range(i, 0, 4096, |f| {
                f.shl(a, i, 3);
                f.add(a, a, Src::Imm(out as i64));
                f.load(x, a, 0);
                let bright = f.cond(Cond::Geu, x, Src::Imm(128));
                f.if_else(bright, |f| f.li(x, 255), |f| f.li(x, 0));
                f.store(x, a, 0);
            });
        });
        f.ret();
    });

    let main = pb.declare("main");
    pb.define(main, |f| {
        f.call_args(blur, &[Src::Imm(40)]);
        f.call_args(threshold, &[Src::Imm(40)]);
        f.halt();
    });
    pb.set_entry(main);
    pb.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_filter_program();
    let layout = Layout::natural(&program);

    // Step 1 (hardware): run under the Hot Spot Detector.
    let mut hsd = HotSpotDetector::new(HsdConfig::table2());
    Executor::new(&program, &layout).run(&mut hsd, &RunConfig::default())?;
    println!("raw hot-spot detections: {}", hsd.records().len());

    // Step 1 (software): deduplicate into phases.
    let phases = filter_hot_spots(hsd.records(), &FilterConfig::default());
    println!("unique phases: {}", phases.len());

    // Step 2: region identification for each phase, by hand.
    let cfg = PackConfig::default();
    let mut cfgs = CfgCache::new();
    for ph in &phases {
        let region = identify_region(&program, &layout, &mut cfgs, ph, &cfg);
        println!(
            "phase {}: {} hot blocks across {} function(s)",
            ph.id,
            region.hot_block_count(),
            region.hot_funcs().len()
        );
    }

    // Step 3: the whole pipeline at once.
    let out = pack(&program, &layout, &phases, &cfg);
    println!(
        "packed: {} packages, {} launch points, expansion {:.1}%",
        out.packages.len(),
        out.launch_points,
        100.0 * out.expansion()
    );

    // Run the rewritten binary and measure residency.
    let packed_layout = Layout::natural(&out.program);
    let mut counts = InstCounts::new();
    Executor::new(&out.program, &packed_layout).run(&mut counts, &RunConfig::default())?;
    println!(
        "package coverage: {:.1}%",
        100.0 * counts.package_coverage()
    );
    Ok(())
}
