//! Quickstart: vacuum-pack a workload end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Profiles the `300.twolf` workload with the hardware Hot Spot Detector,
//! extracts per-phase packages, optimizes them (relayout + rescheduling),
//! and reports the paper's headline metrics: package coverage, code
//! expansion, and speedup on the Table 2 machine.

use vacuum_packing::metrics::{evaluate, profile};
use vacuum_packing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: any `vp_program::Program` works; the suite ships the
    //    paper's Table 1 benchmarks.
    let program = vacuum_packing::workloads::twolf::build(1);
    println!(
        "workload: 300.twolf A ({} functions, {} static instructions)",
        program.funcs.len(),
        program.static_insts()
    );

    // 2. Profile once: the Hot Spot Detector watches retiring branches and
    //    records a hot spot per execution phase; the original binary is
    //    also timed on the Table 2 machine.
    let machine = MachineConfig::table2();
    let profiled = profile("300.twolf A", program, &HsdConfig::table2(), Some(&machine))?;
    println!(
        "profiled: {} dynamic instructions, {} phases detected ({} raw detections)",
        profiled.dyn_insts,
        profiled.phases.len(),
        profiled.raw_detections
    );
    for ph in &profiled.phases {
        println!(
            "  phase {}: {} hot branches, first detected after {} branches",
            ph.id,
            ph.branches.len(),
            ph.first_detected_at
        );
    }

    // 3. Vacuum-pack and measure, with the paper's default configuration
    //    (inference + linking on).
    let outcome = evaluate(
        &profiled,
        &PackConfig::default(),
        &OptConfig::default(),
        Some(&machine),
    )?;
    println!("\nresults:");
    println!("  packages built:        {}", outcome.packages);
    println!("  launch points patched: {}", outcome.launch_points);
    println!("  package coverage:      {:.1}%", 100.0 * outcome.coverage);
    println!("  code expansion:        {:.1}%", 100.0 * outcome.expansion);
    println!("  replication factor:    {:.2}", outcome.replication);
    if let Some(s) = outcome.speedup {
        println!("  speedup (Table 2):     {s:.3}x");
    }
    Ok(())
}
